package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// sweepIndices sweeps an explicit selection and returns the emitted
// aggregates plus the summary.
func sweepIndices(t *testing.T, m *Matrix, indices []int64, cfg SweepConfig) ([]*Stats, *Summary) {
	t.Helper()
	var stats []*Stats
	cfg.OnStats = func(st *Stats) error {
		stats = append(stats, st)
		return nil
	}
	sum, err := m.Sweep(indices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stats, sum
}

// marshalT marshals for byte-level comparisons.
func marshalT(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestParseShard(t *testing.T) {
	t.Parallel()

	for _, tc := range []struct {
		in    string
		index int
		count int
	}{
		{"1/1", 1, 1},
		{"1/3", 1, 3},
		{"3/3", 3, 3},
		{"7/16", 7, 16},
	} {
		sh, err := ParseShard(tc.in)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", tc.in, err)
		}
		if sh.Index != tc.index || sh.Count != tc.count {
			t.Fatalf("ParseShard(%q) = %+v", tc.in, sh)
		}
		if sh.String() != tc.in {
			t.Fatalf("ParseShard(%q).String() = %q", tc.in, sh.String())
		}
	}
	for _, bad := range []string{"", "3", "0/3", "4/3", "-1/3", "1/0", "1/-2", "a/b", "1/3/5", "1.5/3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestShardCutPartition checks the planner invariants: for any selection
// size, the shards of an n-way cut are contiguous, disjoint, cover the
// whole range, and are balanced to within one element.
func TestShardCutPartition(t *testing.T) {
	t.Parallel()

	for _, n := range []int64{0, 1, 2, 5, 12, 288, 1000003} {
		for count := 1; count <= 7; count++ {
			next := int64(0)
			for i := 1; i <= count; i++ {
				lo, hi := Shard{Index: i, Count: count}.Cut(n)
				if lo != next {
					t.Fatalf("n=%d count=%d shard %d starts at %d, want %d", n, count, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d count=%d shard %d has negative size [%d,%d)", n, count, i, lo, hi)
				}
				size := hi - lo
				if size != n/int64(count) && size != n/int64(count)+1 {
					t.Fatalf("n=%d count=%d shard %d unbalanced: size %d", n, count, i, size)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d count=%d shards cover [0,%d), want [0,%d)", n, count, next, n)
			}
		}
	}
}

func TestShardIndices(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Full-matrix shards reassemble the enumeration range.
	var got []int64
	for i := 1; i <= 5; i++ {
		part := Shard{Index: i, Count: 5}.Indices(m, nil)
		if part == nil {
			t.Fatalf("shard %d/5 returned a nil selection", i)
		}
		got = append(got, part...)
	}
	if int64(len(got)) != m.Size() {
		t.Fatalf("shards cover %d indices, matrix has %d", len(got), m.Size())
	}
	for i, idx := range got {
		if idx != int64(i) {
			t.Fatalf("reassembled index %d is %d", i, idx)
		}
	}

	// Sample shards slice the sampled selection, preserving order.
	sample := m.Sample(7, 42)
	got = got[:0]
	for i := 1; i <= 3; i++ {
		got = append(got, Shard{Index: i, Count: 3}.Indices(m, sample)...)
	}
	if len(got) != len(sample) {
		t.Fatalf("sample shards cover %d of %d indices", len(got), len(sample))
	}
	for i := range got {
		if got[i] != sample[i] {
			t.Fatalf("reassembled sample differs at %d: %d vs %d", i, got[i], sample[i])
		}
	}

	// More shards than scenarios: the extras are empty but non-nil.
	empty := Shard{Index: 3, Count: 3}.Indices(m, m.Sample(2, 1))
	if empty == nil || len(empty) != 0 {
		t.Fatalf("oversharded selection = %v, want empty non-nil", empty)
	}
}

// shardFingerprint computes the fingerprint the CLI would stamp on a
// shard envelope of this sweep.
func shardFingerprint(spec *Spec, cfg SweepConfig, sampleN int, sampleSeed uint64) string {
	seeds, window, base := cfg.Effective(spec)
	reg := cfg.Registry
	if reg == nil {
		reg = Builtin()
	}
	return Fingerprint(spec, reg.Version(), seeds, window, base, sampleN, sampleSeed)
}

// TestShardedSweepMergeByteIdentical is the tentpole acceptance property:
// for several shard counts, sweeping every shard separately and merging
// the envelopes reproduces the unsharded sweep's stats stream and summary
// byte for byte — envelopes supplied in any order.
func TestShardedSweepMergeByteIdentical(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Parallel: 2}
	fullStats, fullSum := collectStats(t, m, cfg)
	wantStats := marshalT(t, fullStats)
	wantSum := marshalT(t, fullSum)

	fp := shardFingerprint(spec, cfg, 0, 0)
	for _, count := range []int{1, 2, 3, 5, 12, 20} {
		var shards []*ShardResult
		for i := 1; i <= count; i++ {
			sh := Shard{Index: i, Count: count}
			stats, sum := sweepIndices(t, m, sh.Indices(m, nil), cfg)
			shards = append(shards, &ShardResult{
				Version:     ShardFormatVersion,
				Fingerprint: fp,
				Spec:        spec,
				Shard:       sh,
				Scenarios:   stats,
				Summary:     sum,
			})
		}
		// Merge must not depend on envelope order.
		for l, r := 0, len(shards)-1; l < r; l, r = l+1, r-1 {
			shards[l], shards[r] = shards[r], shards[l]
		}
		mergedStats, mergedSum, err := MergeShards(shards)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if got := marshalT(t, mergedStats); got != wantStats {
			t.Fatalf("count %d: merged stats differ from unsharded sweep", count)
		}
		if got := marshalT(t, mergedSum); got != wantSum {
			t.Fatalf("count %d: merged summary differs from unsharded sweep:\n%s\n%s",
				count, got, wantSum)
		}
	}
}

// TestShardedSampleSweepMerges runs the same property over a sampled
// selection: shards partition the sample, and the merge reproduces the
// unsharded sampled sweep exactly.
func TestShardedSampleSweepMerges(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Parallel: 2}
	sample := m.Sample(7, 9)
	fullStats, fullSum := sweepIndices(t, m, sample, cfg)

	fp := shardFingerprint(spec, cfg, 7, 9)
	var shards []*ShardResult
	for i := 1; i <= 3; i++ {
		sh := Shard{Index: i, Count: 3}
		stats, sum := sweepIndices(t, m, sh.Indices(m, sample), cfg)
		shards = append(shards, &ShardResult{
			Version:     ShardFormatVersion,
			Fingerprint: fp,
			Spec:        spec,
			Shard:       sh,
			Scenarios:   stats,
			Summary:     sum,
		})
	}
	mergedStats, mergedSum, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if marshalT(t, mergedStats) != marshalT(t, fullStats) {
		t.Fatal("merged sampled stats differ from unsharded sampled sweep")
	}
	if marshalT(t, mergedSum) != marshalT(t, fullSum) {
		t.Fatal("merged sampled summary differs from unsharded sampled sweep")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Parallel: 2}
	fp := shardFingerprint(spec, cfg, 0, 0)
	mk := func(i, count int) *ShardResult {
		sh := Shard{Index: i, Count: count}
		stats, sum := sweepIndices(t, m, sh.Indices(m, nil), cfg)
		return &ShardResult{
			Version:     ShardFormatVersion,
			Fingerprint: fp,
			Spec:        spec,
			Shard:       sh,
			Scenarios:   stats,
			Summary:     sum,
		}
	}

	check := func(name, wantErr string, shards ...*ShardResult) {
		t.Helper()
		if _, _, err := MergeShards(shards); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: err = %v, want %q", name, err, wantErr)
		}
	}
	check("empty", "at least one", []*ShardResult{}...)
	check("missing shard", "2 shard results for a 3-way", mk(1, 3), mk(2, 3))
	check("duplicate shard", "duplicate shard 1/2", mk(1, 2), mk(1, 2))
	check("count mismatch", "mixed into", mk(1, 2), mk(2, 3))

	bad := mk(2, 2)
	bad.Fingerprint = "0000000000000000"
	check("fingerprint mismatch", "different sweeps", mk(1, 2), bad)

	lying := mk(2, 2)
	lying.Summary.Scenarios++
	check("inconsistent summary", "summary counts", mk(1, 2), lying)
}

func TestShardResultReadWrite(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Parallel: 2}
	sh := Shard{Index: 1, Count: 2}
	stats, sum := sweepIndices(t, m, sh.Indices(m, nil), cfg)
	sr := &ShardResult{
		Version:     ShardFormatVersion,
		Fingerprint: shardFingerprint(spec, cfg, 0, 0),
		Spec:        spec,
		Shard:       sh,
		Scenarios:   stats,
		Summary:     sum,
	}
	var b strings.Builder
	if err := sr.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShardResult(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if marshalT(t, back) != marshalT(t, sr) {
		t.Fatal("shard result did not round-trip")
	}

	for name, mangle := range map[string]func(*ShardResult){
		"bad version": func(sr *ShardResult) { sr.Version = ShardFormatVersion + 1 },
		"bad shard":   func(sr *ShardResult) { sr.Shard.Index = 0 },
		"no spec":     func(sr *ShardResult) { sr.Spec = nil },
		"no summary":  func(sr *ShardResult) { sr.Summary = nil },
	} {
		broken := *sr
		mangle(&broken)
		var bb strings.Builder
		if err := broken.Write(&bb); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadShardResult(strings.NewReader(bb.String())); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := ReadShardResult(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestShardResultRejectsUnknownFields pins the envelope's forward-compat
// contract: an envelope carrying fields this build does not know is
// rejected outright, never silently accepted with the extra data dropped
// — a future format that grows fields must bump ShardFormatVersion.
func TestShardResultRejectsUnknownFields(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{}
	sh := Shard{Index: 1, Count: 1}
	stats, sum := sweepIndices(t, m, sh.Indices(m, nil), cfg)
	sr := &ShardResult{
		Version:     ShardFormatVersion,
		Fingerprint: shardFingerprint(spec, cfg, 0, 0),
		Spec:        spec,
		Shard:       sh,
		Scenarios:   stats,
		Summary:     sum,
	}
	var b strings.Builder
	if err := sr.Write(&b); err != nil {
		t.Fatal(err)
	}
	// Sanity: the unmodified envelope round-trips.
	if _, err := ReadShardResult(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	// Graft an unknown top-level field onto the valid envelope.
	futured := strings.Replace(b.String(), `"version":`, `"futureField": 7, "version":`, 1)
	if futured == b.String() {
		t.Fatal("test setup: version field not found in envelope")
	}
	if _, err := ReadShardResult(strings.NewReader(futured)); err == nil ||
		!strings.Contains(err.Error(), "futureField") {
		t.Fatalf("envelope with unknown top-level field accepted: %v", err)
	}
	// Unknown fields nested in the summary are rejected too.
	nested := strings.Replace(b.String(), `"summary": {`, `"summary": {"futureStat": 1, `, 1)
	if nested == b.String() {
		t.Fatal("test setup: summary object not found in envelope")
	}
	if _, err := ReadShardResult(strings.NewReader(nested)); err == nil {
		t.Fatal("envelope with unknown summary field accepted")
	}
}

// TestFingerprintSensitivity checks that the fingerprint distinguishes
// every input that changes a sweep's output, and nothing else.
func TestFingerprintSensitivity(t *testing.T) {
	t.Parallel()

	base := func() *Spec {
		s, err := BuiltinSpec("quick")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	reg := Builtin().Version()
	ref := Fingerprint(base(), reg, 2, 10, 1, 0, 0)
	if len(ref) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", ref)
	}
	if got := Fingerprint(base(), reg, 2, 10, 1, 0, 0); got != ref {
		t.Fatal("fingerprint unstable across calls")
	}
	// Sample seed is ignored when not sampling.
	if got := Fingerprint(base(), reg, 2, 10, 1, 0, 99); got != ref {
		t.Fatal("unused sample seed changed the fingerprint")
	}

	distinct := map[string]string{"ref": ref}
	add := func(name string, fp string) {
		t.Helper()
		for prev, other := range distinct {
			if other == fp {
				t.Fatalf("%s collides with %s", name, prev)
			}
		}
		distinct[name] = fp
	}
	add("seeds", Fingerprint(base(), reg, 3, 10, 1, 0, 0))
	add("window", Fingerprint(base(), reg, 2, 11, 1, 0, 0))
	add("baseseed", Fingerprint(base(), reg, 2, 10, 2, 0, 0))
	add("sampled", Fingerprint(base(), reg, 2, 10, 1, 5, 0))
	add("sampleseed", Fingerprint(base(), reg, 2, 10, 1, 5, 1))
	add("registry", Fingerprint(base(), "custom/1", 2, 10, 1, 0, 0))
	add("unversioned registry", Fingerprint(base(), "", 2, 10, 1, 0, 0))

	renamed := base()
	renamed.Name = "quick2"
	add("spec name", Fingerprint(renamed, reg, 2, 10, 1, 0, 0))

	restricted := base()
	if err := restricted.Restrict("goal", "printing"); err != nil {
		t.Fatal(err)
	}
	add("restricted axis", Fingerprint(restricted, reg, 2, 10, 1, 0, 0))

	reordered := base()
	reordered.Axes[0], reordered.Axes[1] = reordered.Axes[1], reordered.Axes[0]
	add("axis order", Fingerprint(reordered, reg, 2, 10, 1, 0, 0))
}

// TestShardedSweepTrialBatchInvariant re-runs the merge property with
// every shard using a different TrialBatch: batching is invisible to the
// shard envelopes, so the merge still reproduces the serial unbatched
// sweep byte for byte.
func TestShardedSweepTrialBatchInvariant(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := SweepConfig{Parallel: 1}
	fullStats, fullSum := collectStats(t, m, base)
	wantStats := marshalT(t, fullStats)
	wantSum := marshalT(t, fullSum)

	fp := shardFingerprint(spec, base, 0, 0)
	const count = 3
	batches := []int{1, 8, 64}
	var shards []*ShardResult
	for i := 1; i <= count; i++ {
		sh := Shard{Index: i, Count: count}
		cfg := SweepConfig{Parallel: 2, TrialBatch: batches[i-1]}
		stats, sum := sweepIndices(t, m, sh.Indices(m, nil), cfg)
		shards = append(shards, &ShardResult{
			Version:     ShardFormatVersion,
			Fingerprint: fp,
			Spec:        spec,
			Shard:       sh,
			Scenarios:   stats,
			Summary:     sum,
		})
	}
	mergedStats, mergedSum, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalT(t, mergedStats); got != wantStats {
		t.Fatal("merged stats differ from serial unbatched sweep")
	}
	if got := marshalT(t, mergedSum); got != wantSum {
		t.Fatal("merged summary differs from serial unbatched sweep")
	}
}
