package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/goals/fsm"
	"repro/internal/goals/printing"
	"repro/internal/goals/transfer"
	"repro/internal/goals/treasure"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/universal"
)

// The axes the registry interprets. A scenario using any other axis name
// is rejected, so typos in specs fail loudly instead of silently running
// the default.
//
//	goal      (required) registered goal name
//	class     server class size (default 8)
//	server    class member index, negative counts from the end
//	          (default -1, the worst-case member), or "obstinate"
//	param     goal-specific size: transfer chunk count, control span,
//	          printing paper budget (default 0 = the goal's default)
//	env       world environment choice (default 0)
//	patience  sensing patience in rounds (default 0 = the goal's default)
//	noise     per-message drop probability on the user channel (default 0)
//	delay     reply delay in rounds (default 0)
//	slow      whole-profile slowdown in rounds (default 0)
//	user      "universal" (default), "shuffled:<seed>" for a universal
//	          user over a shuffled enumeration, or "oracle" for the
//	          candidate matching the server index
//	rounds    execution horizon (default 0 = the engine default)
//	byzantine corrupted-round budget of the Byzantine adversary wrapper
//	          (default 0 = honest)
//	mislead   per-round probability the server suppresses its action
//	          while claiming past progress (default 0 = honest)
//	drift     per-round probability the server re-draws its dialect —
//	          Markov-switching dialects (default 0 = fixed dialect;
//	          only dialect-class goals accept it)
//	space     fsm goals only: machine space as "NxAxB" (states x inputs
//	          x outputs)
//	machine   fsm goals only: machine index within the space
var knownAxes = map[string]bool{
	"goal": true, "class": true, "server": true, "param": true,
	"env": true, "patience": true, "noise": true, "delay": true,
	"slow": true, "user": true, "rounds": true,
	"byzantine": true, "mislead": true, "drift": true,
	"space": true, "machine": true,
}

// Axes holds the parsed values of the registry's common axes, handed to
// goal builders so they construct families and sensing once.
type Axes struct {
	Class     int
	Param     int
	Patience  int
	Env       int
	Rounds    int
	Delay     int
	Slow      int
	Byzantine int
	Noise     float64
	Mislead   float64
	Drift     float64
	Server    string
	User      string
	Space     string
	Machine   string
}

// Parts is a goal builder's output: everything goal-specific the registry
// needs to assemble a scenario's parties.
type Parts struct {
	// Goal is the compact goal instance.
	Goal goal.CompactGoal

	// Enum enumerates the candidate user strategies (stateless; shared
	// across trials).
	Enum enumerate.Enumerator

	// Sense returns a fresh sensing function per call — senses are
	// stateful and must not be shared across trials.
	Sense func() sensing.Sense

	// Member instantiates the i-th server class member (before the
	// adversary and transform stacks are applied).
	Member func(i int) comm.Strategy

	// Drift instantiates the i-th member with a Markov-switching dialect
	// of the given per-round switch probability, replacing Member when
	// the drift axis is positive. Nil means the goal's class has no
	// dialect to drift — such goals reject a positive drift axis.
	Drift func(i int, p float64) comm.Strategy
}

// Builder resolves the goal-specific parts of a scenario.
type Builder func(ax Axes) (*Parts, error)

// Binding is a scenario resolved into executable parties plus the
// execution horizon. Factories are safe to call once per trial, from any
// goroutine.
type Binding struct {
	Goal      goal.CompactGoal
	User      func() (comm.Strategy, error)
	Server    func() comm.Strategy
	World     func() goal.World
	MaxRounds int
}

// Registry maps goal names to builders.
type Registry struct {
	builders map[string]Builder
	version  string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{builders: make(map[string]Builder)}
}

// Register installs a builder for the named goal, replacing any previous
// one. Registering resets the registry's version to "" (uncacheable):
// builders are code, so the registry cannot tell whether the change
// preserves the meaning of previously stored aggregates — the caller
// declares that with SetVersion.
func (r *Registry) Register(name string, b Builder) {
	r.builders[name] = b
	r.version = ""
}

// Version identifies the registry's binding semantics for result caching
// and sweep fingerprints. The empty string means unversioned: sweeps
// still run, but bypass the cache, and fingerprints distinguish the
// registry from every versioned one.
func (r *Registry) Version() string { return r.version }

// SetVersion declares the registry's binding semantics as a stable,
// caller-owned identity, making its sweeps cacheable: aggregates are
// stored and served under this version, and it is the caller's contract
// to bump it whenever a registered builder's behavior changes —
// otherwise a shared cache serves stale aggregates as fresh ones.
func (r *Registry) SetVersion(v string) { r.version = v }

// builtinVersion keys the stock registry's cache entries; bump it when
// any builtin binding changes behavior. The fsm family carries its own
// version (fsm.FamilyVersion), composed in below, so a semantic change
// to generated goals invalidates cached aggregates without touching the
// stock goals' identity — the registry analogue of a versioned
// sub-registry.
const builtinVersion = "builtin/1"

// Builtin returns a fresh registry of the stock goals — printing,
// treasure, transfer and control over their standard dialect classes and
// stock sensing — plus the generated fsm goal family (one goal per
// machine of a declared fst space, selected by the space/machine axes).
func Builtin() *Registry {
	r := NewRegistry()
	// The stock goals predate the generated-family axes; a spec that sets
	// them on a stock goal is a mistake, not a default.
	fsmAxes := func(name string, ax Axes) error {
		if ax.Space != "" || ax.Machine != "" {
			return fmt.Errorf("%s has no space/machine axes", name)
		}
		return nil
	}
	r.Register("printing", func(ax Axes) (*Parts, error) {
		if err := fsmAxes("printing", ax); err != nil {
			return nil, err
		}
		fam, err := dialect.NewWordFamily(printing.Vocabulary(), ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &printing.Goal{Paper: ax.Param},
			Enum:  printing.Enum(fam),
			Sense: func() sensing.Sense { return printing.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&printing.Server{}, fam.Dialect(i))
			},
			Drift: func(i int, p float64) comm.Strategy {
				return server.DriftingDialected(&printing.Server{}, fam, i, p)
			},
		}, nil
	})
	r.Register("treasure", func(ax Axes) (*Parts, error) {
		if err := fsmAxes("treasure", ax); err != nil {
			return nil, err
		}
		if ax.Param != 0 {
			return nil, fmt.Errorf("treasure has no param axis (got %d)", ax.Param)
		}
		return &Parts{
			Goal:  &treasure.Goal{},
			Enum:  treasure.Enum(ax.Class),
			Sense: func() sensing.Sense { return treasure.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return &treasure.Server{Secret: i}
			},
			// Password servers share one language; there is no dialect
			// to drift, so Drift stays nil and drift > 0 is rejected.
		}, nil
	})
	r.Register("transfer", func(ax Axes) (*Parts, error) {
		if err := fsmAxes("transfer", ax); err != nil {
			return nil, err
		}
		fam, err := dialect.NewWordFamily(transfer.Vocabulary(), ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &transfer.Goal{K: ax.Param},
			Enum:  transfer.Enum(fam),
			Sense: func() sensing.Sense { return transfer.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&transfer.Server{}, fam.Dialect(i))
			},
			Drift: func(i int, p float64) comm.Strategy {
				return server.DriftingDialected(&transfer.Server{}, fam, i, p)
			},
		}, nil
	})
	r.Register("control", func(ax Axes) (*Parts, error) {
		if err := fsmAxes("control", ax); err != nil {
			return nil, err
		}
		fam, err := control.NewUnitsFamily(ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &control.Goal{Span: ax.Param},
			Enum:  control.Enum(fam),
			Sense: func() sensing.Sense { return control.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&control.Server{}, fam.Dialect(i))
			},
			Drift: func(i int, p float64) comm.Strategy {
				return server.DriftingDialected(&control.Server{}, fam, i, p)
			},
		}, nil
	})
	r.Register("fsm", func(ax Axes) (*Parts, error) {
		if ax.Param != 0 {
			return nil, fmt.Errorf("fsm has no param axis (got %d)", ax.Param)
		}
		spaceStr := ax.Space
		if spaceStr == "" {
			spaceStr = "2x2x2"
		}
		sp, err := fsm.ParseSpace(spaceStr)
		if err != nil {
			return nil, err
		}
		var idx uint64
		if ax.Machine != "" {
			idx, err = strconv.ParseUint(ax.Machine, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("machine %q is not an unsigned integer", ax.Machine)
			}
		}
		g, err := fsm.New(sp, idx)
		if err != nil {
			return nil, err
		}
		fam, err := dialect.NewWordFamily(fsm.Vocabulary(), ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  g,
			Enum:  g.Enum(fam),
			Sense: func() sensing.Sense { return fsm.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&fsm.Server{G: g}, fam.Dialect(i))
			},
			Drift: func(i int, p float64) comm.Strategy {
				return server.DriftingDialected(&fsm.Server{G: g}, fam, i, p)
			},
		}, nil
	})
	// Set last: Register resets the version. The fsm family's own version
	// rides along so its semantic bumps invalidate exactly the cached
	// aggregates that depend on generated-goal bindings.
	r.version = builtinVersion + "+" + fsm.FamilyVersion
	return r
}

// parseAxes extracts and validates the common axes of a scenario.
func parseAxes(sc *Scenario) (Axes, error) {
	var ax Axes
	for _, av := range sc.Values {
		if !knownAxes[av.Name] {
			return ax, fmt.Errorf("scenario: unknown axis %q (known: goal class server param env patience noise delay slow user rounds byzantine mislead drift space machine)", av.Name)
		}
	}
	var err error
	if ax.Class, err = sc.Int("class", 8); err != nil {
		return ax, err
	}
	if ax.Class < 1 {
		return ax, fmt.Errorf("scenario: class size %d < 1", ax.Class)
	}
	if ax.Param, err = sc.Int("param", 0); err != nil {
		return ax, err
	}
	if ax.Patience, err = sc.Int("patience", 0); err != nil {
		return ax, err
	}
	if ax.Env, err = sc.Int("env", 0); err != nil {
		return ax, err
	}
	if ax.Rounds, err = sc.Int("rounds", 0); err != nil {
		return ax, err
	}
	if ax.Delay, err = sc.Int("delay", 0); err != nil {
		return ax, err
	}
	if ax.Slow, err = sc.Int("slow", 0); err != nil {
		return ax, err
	}
	if ax.Noise, err = sc.Float("noise", 0); err != nil {
		return ax, err
	}
	if ax.Noise < 0 || ax.Noise > 1 {
		return ax, fmt.Errorf("scenario: noise %g outside [0,1]", ax.Noise)
	}
	if ax.Byzantine, err = sc.Int("byzantine", 0); err != nil {
		return ax, err
	}
	if ax.Byzantine < 0 {
		return ax, fmt.Errorf("scenario: byzantine budget %d < 0", ax.Byzantine)
	}
	if ax.Mislead, err = sc.Float("mislead", 0); err != nil {
		return ax, err
	}
	if ax.Mislead < 0 || ax.Mislead > 1 {
		return ax, fmt.Errorf("scenario: mislead %g outside [0,1]", ax.Mislead)
	}
	if ax.Drift, err = sc.Float("drift", 0); err != nil {
		return ax, err
	}
	if ax.Drift < 0 || ax.Drift > 1 {
		return ax, fmt.Errorf("scenario: drift %g outside [0,1]", ax.Drift)
	}
	ax.Server = sc.Str("server", "-1")
	ax.User = sc.Str("user", "universal")
	ax.Space = sc.Str("space", "")
	ax.Machine = sc.Str("machine", "")
	return ax, nil
}

// Bind resolves a scenario into executable parties via the registered goal
// builders.
func (r *Registry) Bind(sc *Scenario) (*Binding, error) {
	goalName, ok := sc.Get("goal")
	if !ok {
		return nil, fmt.Errorf("scenario: %s has no goal axis", sc.ID())
	}
	build, ok := r.builders[goalName]
	if !ok {
		return nil, fmt.Errorf("scenario: no builder registered for goal %q", goalName)
	}
	ax, err := parseAxes(sc)
	if err != nil {
		return nil, err
	}
	parts, err := build(ax)
	if err != nil {
		return nil, fmt.Errorf("scenario: goal %q: %w", goalName, err)
	}

	// Resolve the server: a class member index (negative counts from the
	// end) — or the obstinate probe — wrapped first in the declared
	// adversary (Byzantine, then misleading; drift replaces the member's
	// fixed dialect), then in the declared transform stack.
	stack := server.StackSpec{Slow: ax.Slow, Delay: ax.Delay, Noise: ax.Noise}
	adv := server.AdversarySpec{Byzantine: ax.Byzantine, Mislead: ax.Mislead}
	memberIdx := -1
	var mkServer func() comm.Strategy
	if ax.Server == "obstinate" {
		if ax.Drift > 0 {
			return nil, fmt.Errorf("scenario: obstinate server has no dialect to drift")
		}
		mkServer = func() comm.Strategy {
			return server.Stack(server.Adversary(server.Obstinate(), adv), stack)
		}
	} else {
		idx, err := strconv.Atoi(ax.Server)
		if err != nil {
			return nil, fmt.Errorf("scenario: server %q is neither an index nor \"obstinate\"", ax.Server)
		}
		if idx < 0 {
			idx += ax.Class
		}
		if idx < 0 || idx >= ax.Class {
			return nil, fmt.Errorf("scenario: server index %s outside class of size %d", ax.Server, ax.Class)
		}
		memberIdx = idx
		member := parts.Member
		if ax.Drift > 0 {
			if parts.Drift == nil {
				return nil, fmt.Errorf("scenario: goal %q has no dialect to drift", goalName)
			}
			drift := ax.Drift
			member = func(i int) comm.Strategy { return parts.Drift(i, drift) }
		}
		mkServer = func() comm.Strategy {
			return server.Stack(server.Adversary(member(idx), adv), stack)
		}
	}

	// Resolve the user strategy.
	var mkUser func() (comm.Strategy, error)
	switch {
	case ax.User == "universal":
		mkUser = func() (comm.Strategy, error) {
			return universal.NewCompactUser(parts.Enum, parts.Sense())
		}
	case strings.HasPrefix(ax.User, "shuffled:"):
		seed, err := strconv.ParseUint(ax.User[len("shuffled:"):], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: user %q: bad shuffle seed", ax.User)
		}
		mkUser = func() (comm.Strategy, error) {
			enum, err := enumerate.Shuffled(parts.Enum, seed)
			if err != nil {
				return nil, err
			}
			return universal.NewCompactUser(enum, parts.Sense())
		}
	case ax.User == "oracle":
		if memberIdx < 0 {
			return nil, fmt.Errorf("scenario: oracle user needs an indexed server, not %q", ax.Server)
		}
		mkUser = func() (comm.Strategy, error) {
			return parts.Enum.Strategy(memberIdx), nil
		}
	default:
		return nil, fmt.Errorf("scenario: unknown user %q (universal, shuffled:<seed>, oracle)", ax.User)
	}

	env := ax.Env
	return &Binding{
		Goal:      parts.Goal,
		User:      mkUser,
		Server:    mkServer,
		World:     func() goal.World { return parts.Goal.NewWorld(goal.Env{Choice: env}) },
		MaxRounds: ax.Rounds,
	}, nil
}
