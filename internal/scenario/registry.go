package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/goals/printing"
	"repro/internal/goals/transfer"
	"repro/internal/goals/treasure"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/universal"
)

// The axes the registry interprets. A scenario using any other axis name
// is rejected, so typos in specs fail loudly instead of silently running
// the default.
//
//	goal      (required) registered goal name
//	class     server class size (default 8)
//	server    class member index, negative counts from the end
//	          (default -1, the worst-case member), or "obstinate"
//	param     goal-specific size: transfer chunk count, control span,
//	          printing paper budget (default 0 = the goal's default)
//	env       world environment choice (default 0)
//	patience  sensing patience in rounds (default 0 = the goal's default)
//	noise     per-message drop probability on the user channel (default 0)
//	delay     reply delay in rounds (default 0)
//	slow      whole-profile slowdown in rounds (default 0)
//	user      "universal" (default), "shuffled:<seed>" for a universal
//	          user over a shuffled enumeration, or "oracle" for the
//	          candidate matching the server index
//	rounds    execution horizon (default 0 = the engine default)
var knownAxes = map[string]bool{
	"goal": true, "class": true, "server": true, "param": true,
	"env": true, "patience": true, "noise": true, "delay": true,
	"slow": true, "user": true, "rounds": true,
}

// Axes holds the parsed values of the registry's common axes, handed to
// goal builders so they construct families and sensing once.
type Axes struct {
	Class    int
	Param    int
	Patience int
	Env      int
	Rounds   int
	Delay    int
	Slow     int
	Noise    float64
	Server   string
	User     string
}

// Parts is a goal builder's output: everything goal-specific the registry
// needs to assemble a scenario's parties.
type Parts struct {
	// Goal is the compact goal instance.
	Goal goal.CompactGoal

	// Enum enumerates the candidate user strategies (stateless; shared
	// across trials).
	Enum enumerate.Enumerator

	// Sense returns a fresh sensing function per call — senses are
	// stateful and must not be shared across trials.
	Sense func() sensing.Sense

	// Member instantiates the i-th server class member (before the
	// transform stack is applied).
	Member func(i int) comm.Strategy
}

// Builder resolves the goal-specific parts of a scenario.
type Builder func(ax Axes) (*Parts, error)

// Binding is a scenario resolved into executable parties plus the
// execution horizon. Factories are safe to call once per trial, from any
// goroutine.
type Binding struct {
	Goal      goal.CompactGoal
	User      func() (comm.Strategy, error)
	Server    func() comm.Strategy
	World     func() goal.World
	MaxRounds int
}

// Registry maps goal names to builders.
type Registry struct {
	builders map[string]Builder
	version  string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{builders: make(map[string]Builder)}
}

// Register installs a builder for the named goal, replacing any previous
// one. Registering resets the registry's version to "" (uncacheable):
// builders are code, so the registry cannot tell whether the change
// preserves the meaning of previously stored aggregates — the caller
// declares that with SetVersion.
func (r *Registry) Register(name string, b Builder) {
	r.builders[name] = b
	r.version = ""
}

// Version identifies the registry's binding semantics for result caching
// and sweep fingerprints. The empty string means unversioned: sweeps
// still run, but bypass the cache, and fingerprints distinguish the
// registry from every versioned one.
func (r *Registry) Version() string { return r.version }

// SetVersion declares the registry's binding semantics as a stable,
// caller-owned identity, making its sweeps cacheable: aggregates are
// stored and served under this version, and it is the caller's contract
// to bump it whenever a registered builder's behavior changes —
// otherwise a shared cache serves stale aggregates as fresh ones.
func (r *Registry) SetVersion(v string) { r.version = v }

// builtinVersion keys the stock registry's cache entries; bump it when
// any builtin binding changes behavior.
const builtinVersion = "builtin/1"

// Builtin returns a fresh registry of the stock goals: printing, treasure,
// transfer and control, each over its standard dialect class and stock
// sensing function.
func Builtin() *Registry {
	r := NewRegistry()
	r.Register("printing", func(ax Axes) (*Parts, error) {
		fam, err := dialect.NewWordFamily(printing.Vocabulary(), ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &printing.Goal{Paper: ax.Param},
			Enum:  printing.Enum(fam),
			Sense: func() sensing.Sense { return printing.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&printing.Server{}, fam.Dialect(i))
			},
		}, nil
	})
	r.Register("treasure", func(ax Axes) (*Parts, error) {
		if ax.Param != 0 {
			return nil, fmt.Errorf("treasure has no param axis (got %d)", ax.Param)
		}
		return &Parts{
			Goal:  &treasure.Goal{},
			Enum:  treasure.Enum(ax.Class),
			Sense: func() sensing.Sense { return treasure.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return &treasure.Server{Secret: i}
			},
		}, nil
	})
	r.Register("transfer", func(ax Axes) (*Parts, error) {
		fam, err := dialect.NewWordFamily(transfer.Vocabulary(), ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &transfer.Goal{K: ax.Param},
			Enum:  transfer.Enum(fam),
			Sense: func() sensing.Sense { return transfer.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&transfer.Server{}, fam.Dialect(i))
			},
		}, nil
	})
	r.Register("control", func(ax Axes) (*Parts, error) {
		fam, err := control.NewUnitsFamily(ax.Class)
		if err != nil {
			return nil, err
		}
		return &Parts{
			Goal:  &control.Goal{Span: ax.Param},
			Enum:  control.Enum(fam),
			Sense: func() sensing.Sense { return control.Sense(ax.Patience) },
			Member: func(i int) comm.Strategy {
				return server.Dialected(&control.Server{}, fam.Dialect(i))
			},
		}, nil
	})
	// Set last: Register resets the version.
	r.version = builtinVersion
	return r
}

// parseAxes extracts and validates the common axes of a scenario.
func parseAxes(sc *Scenario) (Axes, error) {
	var ax Axes
	for _, av := range sc.Values {
		if !knownAxes[av.Name] {
			return ax, fmt.Errorf("scenario: unknown axis %q (known: goal class server param env patience noise delay slow user rounds)", av.Name)
		}
	}
	var err error
	if ax.Class, err = sc.Int("class", 8); err != nil {
		return ax, err
	}
	if ax.Class < 1 {
		return ax, fmt.Errorf("scenario: class size %d < 1", ax.Class)
	}
	if ax.Param, err = sc.Int("param", 0); err != nil {
		return ax, err
	}
	if ax.Patience, err = sc.Int("patience", 0); err != nil {
		return ax, err
	}
	if ax.Env, err = sc.Int("env", 0); err != nil {
		return ax, err
	}
	if ax.Rounds, err = sc.Int("rounds", 0); err != nil {
		return ax, err
	}
	if ax.Delay, err = sc.Int("delay", 0); err != nil {
		return ax, err
	}
	if ax.Slow, err = sc.Int("slow", 0); err != nil {
		return ax, err
	}
	if ax.Noise, err = sc.Float("noise", 0); err != nil {
		return ax, err
	}
	if ax.Noise < 0 || ax.Noise > 1 {
		return ax, fmt.Errorf("scenario: noise %g outside [0,1]", ax.Noise)
	}
	ax.Server = sc.Str("server", "-1")
	ax.User = sc.Str("user", "universal")
	return ax, nil
}

// Bind resolves a scenario into executable parties via the registered goal
// builders.
func (r *Registry) Bind(sc *Scenario) (*Binding, error) {
	goalName, ok := sc.Get("goal")
	if !ok {
		return nil, fmt.Errorf("scenario: %s has no goal axis", sc.ID())
	}
	build, ok := r.builders[goalName]
	if !ok {
		return nil, fmt.Errorf("scenario: no builder registered for goal %q", goalName)
	}
	ax, err := parseAxes(sc)
	if err != nil {
		return nil, err
	}
	parts, err := build(ax)
	if err != nil {
		return nil, fmt.Errorf("scenario: goal %q: %w", goalName, err)
	}

	// Resolve the server: a class member index (negative counts from the
	// end) wrapped in the declared transform stack, or the obstinate
	// probe.
	stack := server.StackSpec{Slow: ax.Slow, Delay: ax.Delay, Noise: ax.Noise}
	memberIdx := -1
	var mkServer func() comm.Strategy
	if ax.Server == "obstinate" {
		mkServer = func() comm.Strategy { return server.Stack(server.Obstinate(), stack) }
	} else {
		idx, err := strconv.Atoi(ax.Server)
		if err != nil {
			return nil, fmt.Errorf("scenario: server %q is neither an index nor \"obstinate\"", ax.Server)
		}
		if idx < 0 {
			idx += ax.Class
		}
		if idx < 0 || idx >= ax.Class {
			return nil, fmt.Errorf("scenario: server index %s outside class of size %d", ax.Server, ax.Class)
		}
		memberIdx = idx
		mkServer = func() comm.Strategy { return server.Stack(parts.Member(idx), stack) }
	}

	// Resolve the user strategy.
	var mkUser func() (comm.Strategy, error)
	switch {
	case ax.User == "universal":
		mkUser = func() (comm.Strategy, error) {
			return universal.NewCompactUser(parts.Enum, parts.Sense())
		}
	case strings.HasPrefix(ax.User, "shuffled:"):
		seed, err := strconv.ParseUint(ax.User[len("shuffled:"):], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: user %q: bad shuffle seed", ax.User)
		}
		mkUser = func() (comm.Strategy, error) {
			enum, err := enumerate.Shuffled(parts.Enum, seed)
			if err != nil {
				return nil, err
			}
			return universal.NewCompactUser(enum, parts.Sense())
		}
	case ax.User == "oracle":
		if memberIdx < 0 {
			return nil, fmt.Errorf("scenario: oracle user needs an indexed server, not %q", ax.Server)
		}
		mkUser = func() (comm.Strategy, error) {
			return parts.Enum.Strategy(memberIdx), nil
		}
	default:
		return nil, fmt.Errorf("scenario: unknown user %q (universal, shuffled:<seed>, oracle)", ax.User)
	}

	env := ax.Env
	return &Binding{
		Goal:      parts.Goal,
		User:      mkUser,
		Server:    mkServer,
		World:     func() goal.World { return parts.Goal.NewWorld(goal.Env{Choice: env}) },
		MaxRounds: ax.Rounds,
	}, nil
}
