package scenario

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/sensing"
	"repro/internal/server"
)

// quickMatrix builds the quick builtin matrix.
func quickMatrix(t *testing.T) *Matrix {
	t.Helper()
	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// openCache opens a cache in a fresh temp dir.
func openCache(t *testing.T) *Cache {
	t.Helper()
	c, err := OpenCache(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// cacheFiles lists every entry file in the store.
func cacheFiles(t *testing.T, c *Cache) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(c.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestSweepWarmCacheByteIdentical is the tentpole acceptance property for
// caching: a cold cached sweep matches an uncached sweep byte for byte,
// and a warm rerun matches both while executing zero trials.
func TestSweepWarmCacheByteIdentical(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	plainStats, plainSum := collectStats(t, m, SweepConfig{Parallel: 2})
	want := marshalT(t, plainStats)
	wantSum := marshalT(t, plainSum)

	c := openCache(t)
	coldStats, coldSum := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if marshalT(t, coldStats) != want {
		t.Fatal("cold cached sweep differs from uncached sweep")
	}
	if marshalT(t, coldSum) != wantSum {
		t.Fatal("cold cached summary differs from uncached summary")
	}
	if coldSum.CacheHits != 0 || coldSum.CacheMisses != coldSum.Scenarios {
		t.Fatalf("cold run: %d hits, %d misses over %d scenarios",
			coldSum.CacheHits, coldSum.CacheMisses, coldSum.Scenarios)
	}
	if coldSum.ExecutedTrials != coldSum.Trials {
		t.Fatalf("cold run executed %d of %d trials", coldSum.ExecutedTrials, coldSum.Trials)
	}

	warmStats, warmSum := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if marshalT(t, warmStats) != want {
		t.Fatal("warm cached sweep differs from uncached sweep")
	}
	if marshalT(t, warmSum) != wantSum {
		t.Fatal("warm cached summary differs from uncached summary")
	}
	if warmSum.ExecutedTrials != 0 {
		t.Fatalf("warm run executed %d trials, want 0", warmSum.ExecutedTrials)
	}
	if warmSum.CacheHits != warmSum.Scenarios || warmSum.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits, %d misses over %d scenarios",
			warmSum.CacheHits, warmSum.CacheMisses, warmSum.Scenarios)
	}
}

// TestCacheKeyedByParameters checks that overriding seeds, window or base
// seed misses the entries stored under other parameters instead of
// serving them.
func TestCacheKeyedByParameters(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	c := openCache(t)
	_, cold := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if cold.CacheMisses != cold.Scenarios {
		t.Fatalf("cold run hit %d entries in an empty cache", cold.CacheHits)
	}
	for name, cfg := range map[string]SweepConfig{
		"seeds":    {Parallel: 2, Cache: c, Seeds: 3},
		"window":   {Parallel: 2, Cache: c, Window: 20},
		"baseseed": {Parallel: 2, Cache: c, BaseSeed: 7},
	} {
		_, sum := collectStats(t, m, cfg)
		if sum.CacheHits != 0 {
			t.Fatalf("%s override hit %d entries stored under different parameters", name, sum.CacheHits)
		}
		if sum.ExecutedTrials != sum.Trials {
			t.Fatalf("%s override executed %d of %d trials", name, sum.ExecutedTrials, sum.Trials)
		}
	}
	// And the original parameters still hit everything.
	_, warm := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if warm.CacheHits != warm.Scenarios {
		t.Fatalf("original parameters hit only %d of %d", warm.CacheHits, warm.Scenarios)
	}
}

// TestCacheCorruptionFallsBack corrupts stored entries in several ways
// and checks the sweep recomputes them — output stays byte-identical —
// and heals the store.
func TestCacheCorruptionFallsBack(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	c := openCache(t)
	plainStats, _ := collectStats(t, m, SweepConfig{Parallel: 2})
	want := marshalT(t, plainStats)
	collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})

	files := cacheFiles(t, c)
	if int64(len(files)) != m.Size() {
		t.Fatalf("cache holds %d entries for %d scenarios", len(files), m.Size())
	}
	// Truncate one entry mid-JSON, garbage a second, empty a third.
	if err := os.WriteFile(files[0], []byte(`{"version":1,"key":"v1|tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[2], nil, 0o644); err != nil {
		t.Fatal(err)
	}

	stats, sum := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if marshalT(t, stats) != want {
		t.Fatal("sweep over a corrupted cache differs from the uncached sweep")
	}
	if sum.CacheMisses != 3 || sum.CacheHits != sum.Scenarios-3 {
		t.Fatalf("corrupted run: %d hits, %d misses, want %d and 3",
			sum.CacheHits, sum.CacheMisses, sum.Scenarios-3)
	}
	if sum.ExecutedTrials == 0 {
		t.Fatal("corrupted entries were not recomputed")
	}

	// The recomputation rewrote the corrupted entries: fully warm again.
	_, healed := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if healed.ExecutedTrials != 0 || healed.CacheMisses != 0 {
		t.Fatalf("store not healed: %d misses, %d trials executed",
			healed.CacheMisses, healed.ExecutedTrials)
	}
}

// TestCacheWriteFailureDegrades checks that an unwritable store disables
// caching mid-sweep instead of aborting: the report is still exact and
// the failure surfaces in the accounting.
func TestCacheWriteFailureDegrades(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	plainStats, _ := collectStats(t, m, SweepConfig{Parallel: 2})
	want := marshalT(t, plainStats)

	c := openCache(t)
	// Block the first scenario's fan-out directory with a regular file,
	// so its Put fails regardless of the test's privileges.
	seeds, window, base := SweepConfig{}.Effective(m.Spec())
	key := Key{ScenarioID: m.At(0).ID(), Registry: Builtin().Version(), BaseSeed: base, Seeds: seeds, Window: window}
	if err := os.WriteFile(filepath.Dir(c.path(key)), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}

	stats, sum := collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})
	if marshalT(t, stats) != want {
		t.Fatal("sweep over an unwritable store differs from the uncached sweep")
	}
	if sum.CacheWriteError == nil {
		t.Fatal("failed store write not surfaced in the summary")
	}
	// The first failed write disabled the store for the rest of the run.
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("store holds %d entries (err %v) after being disabled", n, err)
	}
}

// TestCacheVersionAndKeyMismatch exercises Get's verification directly:
// entries written under another format version, or sitting at an address
// whose stored key disagrees (a simulated hash collision), are misses.
func TestCacheVersionAndKeyMismatch(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	c := openCache(t)
	sc := m.At(0)
	seeds, window, base := SweepConfig{}.Effective(m.Spec())
	key := Key{ScenarioID: sc.ID(), BaseSeed: base, Seeds: seeds, Window: window}

	st := &Stats{ID: sc.ID(), Trials: seeds, Successes: 1, SuccessRate: 0.5}
	if err := c.Put(key, st); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(key); !ok || marshalT(t, got) != marshalT(t, st) {
		t.Fatalf("Get after Put: ok=%v", ok)
	}

	files := cacheFiles(t, c)
	if len(files) != 1 {
		t.Fatalf("store has %d entries, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	// A future format version is a miss.
	futur := []byte(`{"version":99,` + string(data[len(`{"version":1,`):]))
	if err := os.WriteFile(files[0], futur, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("entry with foreign format version served")
	}

	// An entry whose embedded key disagrees with the address (hash
	// collision, or a file moved by hand) is a miss.
	other := Key{ScenarioID: sc.ID(), BaseSeed: base + 1, Seeds: seeds, Window: window}
	if err := c.Put(other, st); err != nil {
		t.Fatal(err)
	}
	collided, err := os.ReadFile(c.path(other))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(key), collided, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("entry stored under a different key served")
	}

	// An entry whose stats carry the wrong scenario ID is a miss.
	bogus := &Stats{ID: "someone-else", Trials: seeds}
	if err := c.Put(key, bogus); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("entry with mismatched scenario ID served")
	}
}

// TestCacheConcurrentWriters races writers and readers over the same and
// distinct keys (run under -race in CI): every read serves a complete,
// correct entry or a miss, never a torn one.
func TestCacheConcurrentWriters(t *testing.T) {
	t.Parallel()

	c := openCache(t)
	keys := make([]Key, 8)
	stats := make([]*Stats, len(keys))
	for i := range keys {
		keys[i] = Key{ScenarioID: string(rune('a' + i)), BaseSeed: 1, Seeds: 2, Window: 10}
		stats[i] = &Stats{ID: keys[i].ScenarioID, Trials: 2, Successes: i % 3, SuccessRate: float64(i%3) / 2}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				for i := range keys {
					if err := c.Put(keys[i], stats[i]); err != nil {
						t.Error(err)
						return
					}
					if got, ok := c.Get(keys[i]); ok {
						if got.ID != stats[i].ID || got.Successes != stats[i].Successes {
							t.Errorf("key %d served wrong stats %+v", i, got)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for i := range keys {
		got, ok := c.Get(keys[i])
		if !ok || marshalT(t, got) != marshalT(t, stats[i]) {
			t.Fatalf("key %d not readable after racing writers (ok=%v)", i, ok)
		}
	}
	if n, err := c.Len(); err != nil || n != len(keys) {
		t.Fatalf("store holds %d entries (err %v), want %d", n, err, len(keys))
	}
}

// TestConcurrentSweepsShareCache runs two cached sweeps of the same
// matrix at once — the shard scenario: multiple processes racing on one
// store — and checks both produce the uncached output.
func TestConcurrentSweepsShareCache(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	plainStats, _ := collectStats(t, m, SweepConfig{Parallel: 2})
	want := marshalT(t, plainStats)

	c := openCache(t)
	var wg sync.WaitGroup
	outs := make([]string, 2)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var stats []*Stats
			_, err := m.Sweep(nil, SweepConfig{
				Parallel: 2,
				Cache:    c,
				OnStats: func(st *Stats) error {
					stats = append(stats, st)
					return nil
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			b := marshalT(t, stats)
			outs[i] = b
		}(i)
	}
	wg.Wait()
	for i, got := range outs {
		if got != want {
			t.Fatalf("concurrent cached sweep %d differs from uncached sweep", i)
		}
	}
}

// TestCacheBypassedWithCustomSeedFn checks that a custom seed derivation
// neither reads nor writes the cache — its trials are not the ones the
// default keys describe.
func TestCacheBypassedWithCustomSeedFn(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	c := openCache(t)
	_, sum := collectStats(t, m, SweepConfig{
		Parallel: 2,
		Cache:    c,
		SeedFn:   func(sc *Scenario, trial int) uint64 { return uint64(trial) + 99 },
	})
	if sum.CacheHits != 0 || sum.CacheMisses != 0 {
		t.Fatalf("custom SeedFn touched the cache: %d hits, %d misses", sum.CacheHits, sum.CacheMisses)
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("custom SeedFn wrote %d entries (err %v)", n, err)
	}
}

// brokenRegistry returns a registry whose "broken" goal fails every
// universal-user construction at trial time (nil enumerator).
func brokenRegistry() *Registry {
	reg := Builtin()
	reg.Register("broken", func(Axes) (*Parts, error) {
		return &Parts{
			Goal:   &failGoal{},
			Enum:   nil,
			Sense:  func() sensing.Sense { return sensing.Const(true) },
			Member: func(int) comm.Strategy { return server.Obstinate() },
		}, nil
	})
	return reg
}

// brokenSpec is a one-scenario space over the broken goal.
func brokenSpec() *Spec {
	return &Spec{
		Name: "broken",
		Axes: []Axis{
			{Name: "goal", Values: []string{"broken"}},
			{Name: "server", Values: Ints(0)},
			{Name: "rounds", Values: Ints(10)},
		},
		Seeds: 2,
	}
}

// TestCacheSkipsErroredScenarios checks that scenarios with trial errors
// are recomputed every run instead of being stored, even on a versioned
// (cacheable) registry.
func TestCacheSkipsErroredScenarios(t *testing.T) {
	t.Parallel()

	reg := brokenRegistry()
	reg.SetVersion("test/broken/1")
	m, err := NewMatrix(brokenSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := openCache(t)
	for run := 0; run < 2; run++ {
		sum, err := m.Sweep(nil, SweepConfig{Registry: reg, Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Errors != 2 || sum.CacheHits != 0 {
			t.Fatalf("run %d: %d errors, %d hits — errored scenario served from cache",
				run, sum.Errors, sum.CacheHits)
		}
		if sum.CacheMisses != 1 {
			t.Fatalf("run %d: %d misses — cache not consulted on a versioned registry", run, sum.CacheMisses)
		}
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("errored scenario stored: %d entries (err %v)", n, err)
	}
}

// TestCacheBypassedWithUnversionedRegistry checks the registry contract:
// Register resets the version, an unversioned registry never touches the
// cache (its binding semantics have no stable identity to key entries
// by), and SetVersion restores cacheability under a distinct key space.
func TestCacheBypassedWithUnversionedRegistry(t *testing.T) {
	t.Parallel()

	if v := Builtin().Version(); v == "" {
		t.Fatal("builtin registry is unversioned")
	}
	reg := brokenRegistry() // Register resets the version
	if v := reg.Version(); v != "" {
		t.Fatalf("Register left version %q, want unversioned", v)
	}

	// The spec avoids the broken goal: execution succeeds, but the
	// unversioned registry must still bypass the cache entirely.
	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Restrict("goal", "printing"); err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := openCache(t)
	_, sum := collectStats(t, m, SweepConfig{Registry: reg, Cache: c})
	if sum.CacheHits != 0 || sum.CacheMisses != 0 {
		t.Fatalf("unversioned registry touched the cache: %d hits, %d misses",
			sum.CacheHits, sum.CacheMisses)
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("unversioned registry stored %d entries (err %v)", n, err)
	}

	// Declaring a version opts back in…
	reg.SetVersion("test/extended/1")
	_, cold := collectStats(t, m, SweepConfig{Registry: reg, Cache: c})
	if cold.CacheMisses != cold.Scenarios {
		t.Fatalf("versioned registry: %d misses over %d scenarios", cold.CacheMisses, cold.Scenarios)
	}
	_, warm := collectStats(t, m, SweepConfig{Registry: reg, Cache: c})
	if warm.CacheHits != warm.Scenarios || warm.ExecutedTrials != 0 {
		t.Fatalf("versioned registry not warm: %d hits, %d trials executed",
			warm.CacheHits, warm.ExecutedTrials)
	}

	// …under a key space the builtin registry's sweeps do not share.
	_, builtinCold := collectStats(t, m, SweepConfig{Cache: c})
	if builtinCold.CacheHits != 0 {
		t.Fatalf("builtin sweep hit %d entries stored under test/extended/1", builtinCold.CacheHits)
	}
}

// TestSweepSampleCacheReuse checks cross-selection reuse: a cached full
// sweep warms every sampled sweep, because keys are content-derived, not
// positional.
func TestSweepSampleCacheReuse(t *testing.T) {
	t.Parallel()

	m := quickMatrix(t)
	c := openCache(t)
	collectStats(t, m, SweepConfig{Parallel: 2, Cache: c})

	indices := m.Sample(5, 3)
	var sampled []*Stats
	sum, err := m.Sweep(indices, SweepConfig{
		Parallel: 2,
		Cache:    c,
		OnStats: func(st *Stats) error {
			sampled = append(sampled, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ExecutedTrials != 0 || sum.CacheHits != len(indices) {
		t.Fatalf("sampled sweep over a warm store: %d hits, %d trials executed",
			sum.CacheHits, sum.ExecutedTrials)
	}
	if len(sampled) != len(indices) {
		t.Fatalf("%d stats for %d sampled scenarios", len(sampled), len(indices))
	}
}
