package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// specSeeds are the FuzzSpecJSON seed inputs: valid flat and composed
// envelopes plus near-misses the decoder must reject without panicking.
var specSeeds = []string{
	`{"name":"flat","axes":[{"name":"goal","values":["treasure"]}],"seeds":2}`,
	`{"name":"composed","blocks":[` +
		`{"axes":[{"name":"goal","values":["fsm"]},{"name":"machine","values":["0","1"]}]},` +
		`{"axes":[{"name":"goal","values":["treasure"]}]}` +
		`],"seeds":1,"window":10}`,
	`{"name":"both","axes":[{"name":"a","values":["x"]}],"blocks":[{"axes":[{"name":"a","values":["x"]}]}]}`,
	`{"name":"typo","axez":[{"name":"a","values":["x"]}]}`,
	`{"name":"empty-block","blocks":[{"axes":[]}]}`,
	`{"name":"dup","axes":[{"name":"a","values":["x"]},{"name":"a","values":["y"]}]}`,
	`not json at all`,
	`{"name":""}`,
}

// FuzzSpecJSON feeds arbitrary bytes through the spec decoder. ReadSpec
// must never panic; when it accepts an input, the spec must survive
// matrix construction (a clean error is fine — overflow does that), its
// canonical form must be a fixpoint of Canonical, a serialize/decode
// round trip must preserve the fingerprint, and growing the envelope an
// unknown field must flip acceptance into rejection.
func FuzzSpecJSON(f *testing.F) {
	for _, s := range specSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ReadSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ReadSpec accepted a spec Validate rejects: %v", verr)
		}
		if _, merr := NewMatrix(spec); merr != nil {
			// A clean refusal (e.g. cross-product overflow) is fine; the
			// fingerprint below must still behave.
			t.Logf("matrix refused: %v", merr)
		}
		canon := spec.Canonical()
		fp := Fingerprint(spec, "r", 1, 1, 1, 0, 0)
		if got := Fingerprint(canon.Canonical(), "r", 1, 1, 1, 0, 0); got != fp {
			t.Fatalf("Canonical is not a fingerprint fixpoint: %s → %s", fp, got)
		}

		// Round trip: what the CLI writes, a reader must accept back,
		// and it must name the same sweep.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		back, err := ReadSpec(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-read of %s: %v", enc, err)
		}
		if got := Fingerprint(back, "r", 1, 1, 1, 0, 0); got != fp {
			t.Fatalf("round trip changed fingerprint: %s → %s", fp, got)
		}

		// Unknown fields must stay fatal: inject one into the accepted
		// envelope and require rejection.
		var obj map[string]json.RawMessage
		if json.Unmarshal(data, &obj) == nil && obj != nil {
			obj["zzzUnknownField"] = json.RawMessage(`1`)
			grown, err := json.Marshal(obj)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ReadSpec(bytes.NewReader(grown)); err == nil {
				t.Fatalf("unknown field accepted in %s", grown)
			}
		}
	})
}

// shardSeed builds a minimal valid shard envelope for the fuzz corpus.
func shardSeed(f *testing.F) []byte {
	f.Helper()
	sr := &ShardResult{
		Version:     ShardFormatVersion,
		Fingerprint: "00112233aabbccdd",
		Spec: &Spec{Name: "seed", Axes: []Axis{
			{Name: "goal", Values: []string{"treasure"}},
		}},
		Shard: Shard{Index: 1, Count: 2},
		Scenarios: []*Stats{{
			ID:     "treasure-0000000000000000",
			Axes:   []AxisValue{{Name: "goal", Value: "treasure"}},
			Trials: 1,
		}},
		Summary: &Summary{Spec: "seed", Scenarios: 1, Trials: 1},
	}
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadShardResult feeds arbitrary bytes through the shard-envelope
// decoder: never panic, and anything accepted must validate, survive a
// write/read round trip, and keep rejecting unknown fields.
func FuzzReadShardResult(f *testing.F) {
	valid := shardSeed(f)
	f.Add(valid)
	f.Add(bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 99`), 1))
	f.Add(bytes.Replace(valid, []byte(`"index": 1`), []byte(`"index": 7`), 1))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := ReadShardResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := sr.Validate(); verr != nil {
			t.Fatalf("ReadShardResult accepted an envelope Validate rejects: %v", verr)
		}
		var buf bytes.Buffer
		if err := sr.Write(&buf); err != nil {
			t.Fatalf("re-write: %v", err)
		}
		back, err := ReadShardResult(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.Fingerprint != sr.Fingerprint || back.Shard != sr.Shard ||
			len(back.Scenarios) != len(sr.Scenarios) {
			t.Fatal("write/read round trip changed the envelope framing")
		}
		var obj map[string]json.RawMessage
		if json.Unmarshal(data, &obj) == nil && obj != nil {
			obj["zzzUnknownField"] = json.RawMessage(`1`)
			grown, err := json.Marshal(obj)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ReadShardResult(bytes.NewReader(grown)); err == nil {
				t.Fatalf("unknown field accepted in %s", grown)
			}
		}
	})
}
