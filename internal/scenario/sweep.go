package scenario

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/harness"
	"repro/internal/system"
)

// SweepConfig controls a streaming sweep over a matrix.
type SweepConfig struct {
	// Registry resolves scenarios into parties; nil means Builtin().
	Registry *Registry

	// Parallel bounds the engine worker pool; values < 1 mean
	// GOMAXPROCS. Output is byte-identical at every setting.
	Parallel int

	// Seeds overrides the spec's per-scenario trial count when > 0.
	Seeds int

	// Window overrides the spec's convergence window when > 0.
	Window int

	// BaseSeed overrides the spec's seed-derivation root when nonzero.
	BaseSeed uint64

	// SeedFn overrides per-trial seed derivation entirely. The default
	// derives each trial's seed from the base seed and the scenario's
	// content hash, so a scenario's trials are identical no matter where
	// (or whether) the scenario appears in an enumeration or sample.
	SeedFn func(sc *Scenario, trial int) uint64

	// ChunkTrials is how many trials are buffered per engine batch; 0
	// means 256. Larger chunks amortize scheduling, smaller chunks
	// reduce peak in-flight state.
	ChunkTrials int

	// TrialBatch is how many consecutive trials an engine worker claims
	// per scheduling step (system.BatchConfig.TrialBatch); values < 1
	// mean 1. Output is byte-identical at every setting.
	TrialBatch int

	// Cache, when non-nil, is consulted before a scenario is scheduled
	// and updated after it executes: scenarios whose aggregates are
	// already stored under the sweep's (registry version, base seed,
	// seeds, window) key are emitted without running a single trial,
	// byte-identical to a fresh execution. The cache is bypassed when
	// SeedFn is set (stored aggregates are keyed by the default
	// content-derived seed derivation) and when the registry is
	// unversioned (see Registry.SetVersion — without a declared
	// identity, entries from registries binding the same axes
	// differently would be indistinguishable); scenarios with trial
	// errors are never stored, so transient failures are retried on the
	// next run.
	Cache *Cache

	// OnStats, when non-nil, receives every scenario's aggregate in
	// enumeration order as soon as its chunk completes. An error aborts
	// the sweep. This is the streaming output path: a sweep never holds
	// more than one chunk of per-trial state and never accumulates
	// per-scenario stats itself.
	OnStats func(st *Stats) error
}

// Effective resolves the sweep parameters the config would use against
// the spec's defaults — the values cache keys and shard fingerprints are
// derived from.
func (cfg SweepConfig) Effective(spec *Spec) (seeds, window int, baseSeed uint64) {
	seeds = spec.seeds()
	if cfg.Seeds > 0 {
		seeds = cfg.Seeds
	}
	window = spec.window()
	if cfg.Window > 0 {
		window = cfg.Window
	}
	baseSeed = spec.baseSeed()
	if cfg.BaseSeed != 0 {
		baseSeed = cfg.BaseSeed
	}
	return seeds, window, baseSeed
}

// Dist summarizes a sample of rounds-to-success values.
type Dist struct {
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
}

// Stats is the online aggregate of one scenario's trials — the only
// per-scenario state a sweep materializes.
type Stats struct {
	// ID is the scenario's stable content-derived identifier.
	ID string `json:"id"`

	// Axes are the scenario's coordinates, in spec axis order.
	Axes []AxisValue `json:"axes"`

	// Trials is the number of trials executed; Errors counts those that
	// failed with an engine or construction error (excluded from every
	// other aggregate) and FirstError carries the lowest-index failing
	// trial's message.
	Trials     int    `json:"trials"`
	Errors     int    `json:"errors,omitempty"`
	FirstError string `json:"firstError,omitempty"`

	// Successes counts trials that achieved the goal: every prefix in
	// the final window rounds acceptable. SuccessRate is Successes over
	// Trials.
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`

	// Rounds summarizes rounds-to-success (the last unacceptable prefix
	// length) over successful trials.
	Rounds Dist `json:"roundsToSuccess"`

	// MeanExecutedRounds is the mean execution length over all
	// non-error trials.
	MeanExecutedRounds float64 `json:"meanExecutedRounds"`

	// ExecutedRounds is the total number of rounds executed across all
	// trials, errored ones included — the scenario's exact contribution
	// to the sweep summary's TotalRounds, carried here so cached and
	// shard-merged summaries reproduce a fresh run's totals bit for
	// bit.
	ExecutedRounds int64 `json:"executedRounds"`

	// MsgsPerRound is the message overhead: non-silent messages
	// observed on the user's channels per executed round, totalled over
	// non-error trials.
	MsgsPerRound float64 `json:"msgsPerRound"`

	// MeanSwitches is the mean candidate-eviction count for user
	// strategies that report one (universal users), over non-error
	// trials; 0 when the user strategy has no switch counter.
	MeanSwitches float64 `json:"meanSwitches"`
}

// Axis returns the scenario coordinate the aggregate was computed for.
func (st *Stats) Axis(name string) (string, bool) {
	return findAxis(st.Axes, name)
}

// AxisInt returns the named coordinate parsed as an int; unlike the
// Scenario accessors an absent axis is an error, since a consumer reading
// an aggregate back expects the coordinate it asks for to exist.
func (st *Stats) AxisInt(name string) (int, error) {
	v, ok := st.Axis(name)
	if !ok {
		return 0, fmt.Errorf("scenario: aggregate %s has no %q axis", st.ID, name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("scenario: aggregate %s axis %q: %q is not an int", st.ID, name, v)
	}
	return n, nil
}

// AxisFloat returns the named coordinate parsed as a float64; an absent
// axis is an error.
func (st *Stats) AxisFloat(name string) (float64, error) {
	v, ok := st.Axis(name)
	if !ok {
		return 0, fmt.Errorf("scenario: aggregate %s has no %q axis", st.ID, name)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: aggregate %s axis %q: %q is not a float", st.ID, name, v)
	}
	return f, nil
}

// Summary totals a sweep.
type Summary struct {
	Spec        string  `json:"spec"`
	Scenarios   int     `json:"scenarios"`
	Trials      int     `json:"trials"`
	Errors      int     `json:"errors"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`
	TotalRounds int64   `json:"totalRounds"`

	// Cache and execution accounting. Deliberately excluded from
	// serialized output so warm-cache, sharded-and-merged and fresh
	// serial runs stay byte-identical; they exist for observability and
	// tests. Trials above always counts what the aggregates cover;
	// ExecutedTrials counts what this run actually ran. CacheWriteError
	// records the first failed store write: like every other cache
	// problem it degrades (the store is disabled for the rest of the
	// sweep) instead of aborting, because the report is still exact —
	// only the next run's warm-up is lost.
	CacheHits       int   `json:"-"`
	CacheMisses     int   `json:"-"`
	ExecutedTrials  int   `json:"-"`
	CacheWriteError error `json:"-"`
}

// switcher is implemented by user strategies that count candidate
// evictions (universal.CompactUser).
type switcher interface{ Switches() int }

// trialSlot tracks one trial online via the engine's round hooks,
// replacing full history recording: acceptability is judged round by
// round (valid for referees that judge a prefix by its recent states —
// every stock goal, whose worlds serialize cumulative state into each
// snapshot).
//
// Goals that implement goal.WorldJudge are judged on the live world via
// Config.OnRoundLive, so the hot sweep loop never materializes — let
// alone parses — a snapshot string; the judge contract guarantees the
// verdicts, and therefore every aggregate byte, are identical to the
// snapshot path. Other goals fall back to Config.OnRound with a reusable
// single-state history.
type trialSlot struct {
	g       goal.CompactGoal
	judge   goal.WorldJudge // non-nil selects the live fast path
	user    comm.Strategy
	scratch comm.History
	rounds  int
	lastBad int // largest prefix length the referee rejected
	msgs    int
}

func (s *trialSlot) onRound(round int, rv comm.RoundView, state comm.WorldState) {
	s.rounds = round + 1
	if s.scratch.States == nil {
		s.scratch.States = make([]comm.WorldState, 1)
	}
	s.scratch.States[0] = state
	s.scratch.Dropped = round
	if !s.g.Acceptable(s.scratch) {
		s.lastBad = round + 1
	}
	s.countMsgs(rv)
}

func (s *trialSlot) onRoundLive(round int, rv comm.RoundView, w goal.World) {
	s.rounds = round + 1
	if !s.judge.AcceptableWorld(w) {
		s.lastBad = round + 1
	}
	s.countMsgs(rv)
}

func (s *trialSlot) countMsgs(rv comm.RoundView) {
	if !rv.In.FromServer.Empty() {
		s.msgs++
	}
	if !rv.In.FromWorld.Empty() {
		s.msgs++
	}
	if !rv.Out.ToServer.Empty() {
		s.msgs++
	}
	if !rv.Out.ToWorld.Empty() {
		s.msgs++
	}
}

// scenJob is one scenario's in-flight state within a chunk; a cache hit
// carries its ready-made aggregate instead of trial slots, holding its
// place in the emission order.
type scenJob struct {
	sc     *Scenario
	slots  []*trialSlot
	base   int    // index of the scenario's first trial within the chunk
	cached *Stats // non-nil for cache hits; no trials were scheduled
}

// fold reduces a completed scenario's slots and per-trial errors into its
// aggregate. Distribution statistics reuse the harness implementations, so
// sweep numbers agree bit for bit with the hand-coded experiment tables.
func (j *scenJob) fold(errs []error, window int) *Stats {
	st := &Stats{
		ID:     j.sc.ID(),
		Axes:   j.sc.Values,
		Trials: len(j.slots),
	}
	var conv []float64
	var totalRounds, totalMsgs, totalSwitches int
	counted := 0
	for t, slot := range j.slots {
		st.ExecutedRounds += int64(slot.rounds)
		if err := errs[j.base+t]; err != nil {
			st.Errors++
			if st.FirstError == "" {
				st.FirstError = err.Error()
			}
			continue
		}
		counted++
		totalRounds += slot.rounds
		totalMsgs += slot.msgs
		if u, ok := slot.user.(switcher); ok {
			totalSwitches += u.Switches()
		}
		if slot.rounds >= window && slot.lastBad <= slot.rounds-window {
			st.Successes++
			conv = append(conv, float64(slot.lastBad))
		}
	}
	if st.Trials > 0 {
		st.SuccessRate = float64(st.Successes) / float64(st.Trials)
	}
	st.Rounds = Dist{
		Mean:   harness.Mean(conv),
		P50:    harness.Percentile(conv, 50),
		P99:    harness.Percentile(conv, 99),
		Max:    harness.Max(conv),
		Stddev: harness.Stddev(conv),
	}
	if counted > 0 {
		st.MeanExecutedRounds = float64(totalRounds) / float64(counted)
		st.MeanSwitches = float64(totalSwitches) / float64(counted)
	}
	if totalRounds > 0 {
		st.MsgsPerRound = float64(totalMsgs) / float64(totalRounds)
	}
	return st
}

// Sweep streams the given scenario indices (nil means the whole matrix, in
// enumeration order) through the batch execution engine. Scenarios are
// buffered into chunks of trials, executed across the worker pool, folded
// into per-scenario aggregates and emitted via cfg.OnStats — per-trial
// results are released as soon as each chunk folds, so sweep memory is
// bounded by the chunk size regardless of matrix size.
//
// Every aggregate is deterministic given the spec and seeds:
// parallelism only changes wall-clock time, never a byte of output.
func (m *Matrix) Sweep(indices []int64, cfg SweepConfig) (*Summary, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = Builtin()
	}
	seeds, window, base := cfg.Effective(m.spec)
	seedFn := cfg.SeedFn
	cache := cfg.Cache
	if seedFn == nil {
		seedFn = func(sc *Scenario, trial int) uint64 {
			return system.DeriveSeed(base^sc.Hash(), trial)
		}
	} else {
		// Cached aggregates are keyed by the default seed derivation; a
		// custom SeedFn runs different trials, so the cache must not
		// serve (or be fed) its results.
		cache = nil
	}
	if reg.Version() == "" {
		// An unversioned registry has no stable binding identity to key
		// entries by; serving a shared store's aggregates here could
		// return results computed under different semantics.
		cache = nil
	}
	chunkTrials := cfg.ChunkTrials
	if chunkTrials <= 0 {
		chunkTrials = 256
	}

	sum := &Summary{Spec: m.spec.Name}
	var (
		jobs   []*scenJob
		trials []system.Trial
	)

	flush := func() error {
		if len(jobs) == 0 {
			return nil
		}
		var errs []error
		if len(trials) > 0 {
			start := time.Now()
			results, errList := system.RunEach(trials, system.BatchConfig{
				Parallelism: cfg.Parallel,
				TrialBatch:  cfg.TrialBatch,
			})
			mChunkSeconds.Observe(time.Since(start).Seconds())
			mChunkTrials.Observe(float64(len(trials)))
			for _, res := range results {
				system.ReleaseResult(res)
			}
			errs = errList
			sum.ExecutedTrials += len(trials)
		}
		for _, job := range jobs {
			st := job.cached
			if st == nil {
				st = job.fold(errs, window)
				if cache != nil && st.Errors == 0 {
					key := Key{ScenarioID: st.ID, Registry: reg.Version(), BaseSeed: base, Seeds: seeds, Window: window}
					if err := cache.Put(key, st); err != nil {
						// An unwritable store (read-only dir, full
						// disk) must not abort a sweep whose results
						// are exact regardless: disable the cache and
						// surface the failure in the accounting.
						sum.CacheWriteError = err
						cache = nil
					}
				}
			}
			goalName, ok := st.Axis("goal")
			if !ok || goalName == "" {
				goalName = "none"
			}
			mScenarios.With(goalName).Inc()
			sum.Scenarios++
			sum.Trials += st.Trials
			sum.Errors += st.Errors
			sum.Successes += st.Successes
			sum.TotalRounds += st.ExecutedRounds
			if cfg.OnStats != nil {
				if err := cfg.OnStats(st); err != nil {
					return err
				}
			}
		}
		jobs = jobs[:0]
		trials = trials[:0]
		return nil
	}

	schedule := func(i int64) error {
		sc := m.At(i)
		if cache != nil {
			key := Key{ScenarioID: sc.ID(), Registry: reg.Version(), BaseSeed: base, Seeds: seeds, Window: window}
			if st, ok := cache.Get(key); ok {
				sum.CacheHits++
				mCacheHits.Inc()
				jobs = append(jobs, &scenJob{sc: sc, cached: st})
				if len(jobs) >= chunkTrials {
					return flush()
				}
				return nil
			}
			sum.CacheMisses++
			mCacheMisses.Inc()
		}
		bind, err := reg.Bind(sc)
		if err != nil {
			return err
		}
		judge, _ := bind.Goal.(goal.WorldJudge)
		job := &scenJob{sc: sc, slots: make([]*trialSlot, seeds), base: len(trials)}
		for t := 0; t < seeds; t++ {
			slot := &trialSlot{g: bind.Goal, judge: judge}
			job.slots[t] = slot
			mkUser := bind.User
			cfg := system.Config{
				MaxRounds: bind.MaxRounds,
				Seed:      seedFn(sc, t),
				Record:    system.RecordOff,
			}
			if judge != nil {
				cfg.OnRoundLive = slot.onRoundLive
			} else {
				cfg.OnRound = slot.onRound
			}
			trials = append(trials, system.Trial{
				User: func() (comm.Strategy, error) {
					u, err := mkUser()
					slot.user = u
					return u, err
				},
				Server: bind.Server,
				World:  bind.World,
				Config: cfg,
			})
		}
		jobs = append(jobs, job)
		if len(trials) >= chunkTrials {
			return flush()
		}
		return nil
	}

	if indices == nil {
		for i := int64(0); i < m.size; i++ {
			if err := schedule(i); err != nil {
				return nil, err
			}
		}
	} else {
		for _, i := range indices {
			if i < 0 || i >= m.size {
				return nil, fmt.Errorf("scenario: sweep index %d out of range [0,%d)", i, m.size)
			}
			if err := schedule(i); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if sum.Trials > 0 {
		sum.SuccessRate = float64(sum.Successes) / float64(sum.Trials)
	}
	return sum, nil
}
