package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Matrix is the lazy expansion of a Spec: scenarios are decoded from
// their index on demand, so a Matrix over a huge space is as cheap as one
// over a handful of points. A flat spec expands to one mixed-radix
// cross-product; a composed spec is first canonicalized (see
// Spec.Canonical) and expands to the concatenation of its blocks'
// cross-products in canonical block order.
type Matrix struct {
	spec *Spec
	size int64
	segs []segment // one per block of a composed spec; nil when flat
}

// segment is one block's slice of a composed matrix's index range.
type segment struct {
	axes   []Axis
	offset int64 // first index of the segment
	size   int64
}

// NewMatrix validates the spec and prepares its expansion. For a composed
// spec the matrix expands the canonical form — retrieve it via Spec when
// the authored and enumerated shapes must agree (fingerprints and
// envelopes always do, because Fingerprint canonicalizes too).
func NewMatrix(spec *Spec) (*Matrix, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Canonical()
	if len(spec.Blocks) > 0 {
		m := &Matrix{spec: spec, segs: make([]segment, 0, len(spec.Blocks))}
		for i, b := range spec.Blocks {
			bsize, err := crossSize(spec.Name, b.Axes)
			if err != nil {
				return nil, err
			}
			if m.size > math.MaxInt64-bsize {
				return nil, fmt.Errorf("scenario: spec %q block union overflows int64", spec.Name)
			}
			m.segs = append(m.segs, segment{axes: spec.Blocks[i].Axes, offset: m.size, size: bsize})
			m.size += bsize
		}
		return m, nil
	}
	size, err := crossSize(spec.Name, spec.Axes)
	if err != nil {
		return nil, err
	}
	return &Matrix{spec: spec, size: size}, nil
}

// crossSize returns the cross-product size of one axis list, guarding
// against int64 overflow.
func crossSize(specName string, axes []Axis) (int64, error) {
	size := int64(1)
	for _, ax := range axes {
		n := int64(len(ax.Values))
		if size > math.MaxInt64/n {
			return 0, fmt.Errorf("scenario: spec %q cross-product overflows int64", specName)
		}
		size *= n
	}
	return size, nil
}

// Spec returns the spec the matrix expands: the authored spec when flat,
// its canonical form when composed.
func (m *Matrix) Spec() *Spec { return m.spec }

// Size returns the number of scenarios in the space.
func (m *Matrix) Size() int64 { return m.size }

// At decodes the i-th scenario (0 ≤ i < Size). Within an axis list the
// first axis varies slowest: index 0 assigns every axis its first value.
func (m *Matrix) At(i int64) *Scenario {
	if i < 0 || i >= m.size {
		panic(fmt.Sprintf("scenario: index %d out of range [0,%d)", i, m.size))
	}
	axes := m.spec.Axes
	rem := i
	if m.segs != nil {
		// The segment holding i: the last one starting at or before it.
		lo, hi := 0, len(m.segs)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if m.segs[mid].offset <= i {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		axes = m.segs[lo].axes
		rem = i - m.segs[lo].offset
	}
	sc := &Scenario{
		Spec:   m.spec,
		Index:  i,
		Values: make([]AxisValue, len(axes)),
	}
	for a := len(axes) - 1; a >= 0; a-- {
		ax := &axes[a]
		n := int64(len(ax.Values))
		sc.Values[a] = AxisValue{Name: ax.Name, Value: ax.Values[rem%n]}
		rem /= n
	}
	return sc
}

// Each enumerates every scenario in index order, stopping at the first
// error from fn.
func (m *Matrix) Each(fn func(*Scenario) error) error {
	for i := int64(0); i < m.size; i++ {
		if err := fn(m.At(i)); err != nil {
			return err
		}
	}
	return nil
}

// Sample draws n distinct scenario indices uniformly without replacement,
// deterministically per seed, returned in ascending order so sweeps over a
// sample stream in enumeration order. When n ≥ Size every index is
// returned. It uses Floyd's algorithm, so sampling a handful of points
// from a billion-scenario space costs O(n), not O(Size).
func (m *Matrix) Sample(n int, seed uint64) []int64 {
	if int64(n) >= m.size {
		all := make([]int64, m.size)
		for i := range all {
			all[i] = int64(i)
		}
		return all
	}
	if n <= 0 {
		return nil
	}
	r := xrand.New(seed)
	// intn draws from [0, bound) for int64 bounds; the modulo bias is
	// ≤ bound/2^63, far below anything observable.
	intn := func(bound int64) int64 {
		return int64(r.Uint64() % uint64(bound))
	}
	chosen := make(map[int64]bool, n)
	for j := m.size - int64(n); j < m.size; j++ {
		t := intn(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]int64, 0, n)
	for i := range chosen {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
