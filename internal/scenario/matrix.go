package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Matrix is the lazy cross-product expansion of a Spec: scenarios are
// decoded from their mixed-radix index on demand, so a Matrix over a huge
// space is as cheap as one over a handful of points.
type Matrix struct {
	spec *Spec
	size int64
}

// NewMatrix validates the spec and prepares its expansion.
func NewMatrix(spec *Spec) (*Matrix, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	size := int64(1)
	for _, ax := range spec.Axes {
		n := int64(len(ax.Values))
		if size > math.MaxInt64/n {
			return nil, fmt.Errorf("scenario: spec %q cross-product overflows int64", spec.Name)
		}
		size *= n
	}
	return &Matrix{spec: spec, size: size}, nil
}

// Spec returns the spec the matrix expands.
func (m *Matrix) Spec() *Spec { return m.spec }

// Size returns the number of scenarios in the cross-product.
func (m *Matrix) Size() int64 { return m.size }

// At decodes the i-th scenario (0 ≤ i < Size). The first axis varies
// slowest: index 0 assigns every axis its first value.
func (m *Matrix) At(i int64) *Scenario {
	if i < 0 || i >= m.size {
		panic(fmt.Sprintf("scenario: index %d out of range [0,%d)", i, m.size))
	}
	sc := &Scenario{
		Spec:   m.spec,
		Index:  i,
		Values: make([]AxisValue, len(m.spec.Axes)),
	}
	rem := i
	for a := len(m.spec.Axes) - 1; a >= 0; a-- {
		ax := &m.spec.Axes[a]
		n := int64(len(ax.Values))
		sc.Values[a] = AxisValue{Name: ax.Name, Value: ax.Values[rem%n]}
		rem /= n
	}
	return sc
}

// Each enumerates every scenario in index order, stopping at the first
// error from fn.
func (m *Matrix) Each(fn func(*Scenario) error) error {
	for i := int64(0); i < m.size; i++ {
		if err := fn(m.At(i)); err != nil {
			return err
		}
	}
	return nil
}

// Sample draws n distinct scenario indices uniformly without replacement,
// deterministically per seed, returned in ascending order so sweeps over a
// sample stream in enumeration order. When n ≥ Size every index is
// returned. It uses Floyd's algorithm, so sampling a handful of points
// from a billion-scenario space costs O(n), not O(Size).
func (m *Matrix) Sample(n int, seed uint64) []int64 {
	if int64(n) >= m.size {
		all := make([]int64, m.size)
		for i := range all {
			all[i] = int64(i)
		}
		return all
	}
	if n <= 0 {
		return nil
	}
	r := xrand.New(seed)
	// intn draws from [0, bound) for int64 bounds; the modulo bias is
	// ≤ bound/2^63, far below anything observable.
	intn := func(bound int64) int64 {
		return int64(r.Uint64() % uint64(bound))
	}
	chosen := make(map[int64]bool, n)
	for j := m.size - int64(n); j < m.size; j++ {
		t := intn(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]int64, 0, n)
	for i := range chosen {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
