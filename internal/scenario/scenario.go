package scenario

import (
	"fmt"
	"sort"
	"strconv"
)

// AxisValue is one resolved (axis, value) coordinate of a scenario.
type AxisValue struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Scenario is one point of a scenario space: a full assignment of a value
// to every axis. Scenarios are decoded on demand from a Matrix index; the
// identity of a scenario is its content (see ID), not its position.
type Scenario struct {
	// Spec is the space the scenario was drawn from.
	Spec *Spec

	// Index is the scenario's position in the spec's enumeration order.
	Index int64

	// Values are the resolved coordinates, in spec axis order. Values
	// must not be mutated after the first Hash or ID call: both are
	// content-derived and memoized on first use.
	Values []AxisValue

	hash   uint64 // memoized Hash
	hashOK bool
	id     string // memoized ID
}

// findAxis looks a coordinate up by axis name.
func findAxis(values []AxisValue, name string) (string, bool) {
	for _, av := range values {
		if av.Name == name {
			return av.Value, true
		}
	}
	return "", false
}

// Get returns the value assigned to the named axis.
func (sc *Scenario) Get(name string) (string, bool) {
	return findAxis(sc.Values, name)
}

// Str returns the named axis value, or def when the axis is absent.
func (sc *Scenario) Str(name, def string) string {
	if v, ok := sc.Get(name); ok {
		return v
	}
	return def
}

// Int returns the named axis value parsed as an int, or def when the axis
// is absent. A present but unparsable value is an error.
func (sc *Scenario) Int(name string, def int) (int, error) {
	v, ok := sc.Get(name)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("scenario: axis %q: %q is not an int", name, v)
	}
	return n, nil
}

// Float returns the named axis value parsed as a float64, or def when the
// axis is absent. A present but unparsable value is an error.
func (sc *Scenario) Float(name string, def float64) (float64, error) {
	v, ok := sc.Get(name)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: axis %q: %q is not a float", name, v)
	}
	return f, nil
}

// FNV-1a parameters shared by every content hash in the package
// (scenario IDs, sweep fingerprints, cache entry addresses).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// fnv1a folds s into a running 64-bit FNV-1a hash.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// fnv1aLine folds s plus a terminating newline, so consecutive fields
// cannot collide by shifting bytes across their boundary.
func fnv1aLine(h uint64, s string) uint64 {
	return fnv1a(fnv1a(h, s), "\n")
}

// Hash is the scenario's content hash: FNV-1a over the sorted,
// length-prefixed "axis=value" coordinates. It is invariant under axis
// reordering and under the scenario's position in any enumeration, so the
// same configuration hashes identically across specs that merely permute
// or extend value lists. The length prefixes make the encoding injective:
// names or values containing the separator characters cannot collide with
// a different coordinate assignment.
// The hash is memoized: the per-trial seed derivation calls Hash once
// per trial, so only the first call pays for encoding and sorting.
func (sc *Scenario) Hash() uint64 {
	if sc.hashOK {
		return sc.hash
	}
	keys := make([]string, len(sc.Values))
	var b []byte
	for i, av := range sc.Values {
		// "%d:%s=%d:%s" with the coordinate's lengths and strings.
		b = strconv.AppendInt(b[:0], int64(len(av.Name)), 10)
		b = append(b, ':')
		b = append(b, av.Name...)
		b = append(b, '=')
		b = strconv.AppendInt(b, int64(len(av.Value)), 10)
		b = append(b, ':')
		b = append(b, av.Value...)
		keys[i] = string(b)
	}
	sort.Strings(keys)
	h := uint64(offset64)
	for _, k := range keys {
		h = fnv1aLine(h, k)
	}
	sc.hash, sc.hashOK = h, true
	return h
}

// ID is the scenario's stable content-derived identifier: the goal axis
// value (when present) plus the 16-hex-digit content hash. Two scenarios
// share an ID iff they assign the same values to the same axes.
// The ID string is memoized alongside the hash.
func (sc *Scenario) ID() string {
	if sc.id != "" {
		return sc.id
	}
	if g, ok := sc.Get("goal"); ok {
		sc.id = fmt.Sprintf("%s-%016x", g, sc.Hash())
	} else {
		sc.id = fmt.Sprintf("%016x", sc.Hash())
	}
	return sc.id
}

// String renders the scenario as its coordinates, for logs.
func (sc *Scenario) String() string {
	s := sc.ID()
	for _, av := range sc.Values {
		s += " " + av.Name + "=" + av.Value
	}
	return s
}
