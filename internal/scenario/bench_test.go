package scenario

import "testing"

// BenchmarkSweep measures sweep throughput on the quick built-in matrix —
// the number this PR's BENCH_sweep.json artifact tracks across commits.
func BenchmarkSweep(b *testing.B) {
	spec, err := BuiltinSpec("quick")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		sum, err := m.Sweep(nil, SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += sum.TotalRounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkAdversarialSweep measures throughput with the full adversary
// stack engaged — Byzantine corruption, misleading feedback and dialect
// drift over the composed adversarial builtin. CI additionally tracks
// this matrix as a BENCH artifact gated by benchcmp -maxallocgrow, so
// an allocation creeping into the wrapper hot path fails the gate.
func BenchmarkAdversarialSweep(b *testing.B) {
	spec, err := BuiltinSpec("adversarial")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		sum, err := m.Sweep(nil, SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += sum.TotalRounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}
