package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Shard identifies one part of an i/n partition of a sweep's scenario
// selection. Index is 1-based: shard 1/3 covers the first third of the
// selection in enumeration order. Shards are contiguous index ranges, so
// concatenating shard outputs in shard order reproduces the unsharded
// sweep's stats stream exactly.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ParseShard parses the CLI form "i/n" (e.g. "2/3").
func ParseShard(s string) (Shard, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("scenario: bad shard %q: want i/n (e.g. 2/3)", s)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("scenario: bad shard index in %q: %v", s, err)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil {
		return Shard{}, fmt.Errorf("scenario: bad shard count in %q: %v", s, err)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks that the shard names a real part of a 1-based i/n
// partition.
func (sh Shard) Validate() error {
	if sh.Count < 1 {
		return fmt.Errorf("scenario: shard count %d < 1", sh.Count)
	}
	if sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("scenario: shard index %d outside 1..%d", sh.Index, sh.Count)
	}
	return nil
}

// String renders the shard in its CLI form.
func (sh Shard) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// Cut returns the half-open range [lo, hi) of selection positions this
// shard covers within a selection of n items. The partition is contiguous
// and balanced: shard sizes differ by at most one, with the earlier
// shards taking the remainder. Cut is overflow-safe for any int64 n.
func (sh Shard) Cut(n int64) (lo, hi int64) {
	c := int64(sh.Count)
	base := n / c
	rem := n % c
	j := int64(sh.Index - 1)
	lo = j*base + min(j, rem)
	hi = lo + base
	if j < rem {
		hi++
	}
	return lo, hi
}

// Indices materializes this shard's slice of a sweep selection: a
// contiguous run of the sampled indices when sample is non-nil, otherwise
// of the matrix's full enumeration range. The result is never nil (an
// empty shard is an empty selection, not "the whole matrix"), so it can
// be passed to Sweep directly.
func (sh Shard) Indices(m *Matrix, sample []int64) []int64 {
	if sample != nil {
		lo, hi := sh.Cut(int64(len(sample)))
		out := make([]int64, hi-lo)
		copy(out, sample[lo:hi])
		return out
	}
	lo, hi := sh.Cut(m.Size())
	out := make([]int64, hi-lo)
	for i := range out {
		out[i] = lo + int64(i)
	}
	return out
}

// Fingerprint is a stable hex digest of everything that determines a
// sweep's result stream: the spec content (name plus axes with their
// values in enumeration order — order matters for flat specs, it fixes
// the index mapping), the registry version the scenarios are bound under
// (see Registry.Version), the effective seeds/window/base-seed, and the
// sample selection (n = 0 means the full enumeration and ignores the
// sample seed). Composed specs are canonicalized first (Spec.Canonical),
// the same normalization Matrix enumerates under — so any authored
// ordering of the same composition fingerprints identically, and a
// composition that collapses to a single block shares its fingerprint
// with the equivalent flat spec. Two runs that agree on these inputs
// produce byte-identical reports, so the fingerprint keys result caches
// across CI runs and refuses merges of shards drawn from different
// sweeps. All fields are length- or newline-delimited, keeping the
// encoding injective.
func Fingerprint(spec *Spec, registry string, seeds, window int, baseSeed uint64, sampleN int, sampleSeed uint64) string {
	if sampleN <= 0 {
		sampleN, sampleSeed = 0, 0
	}
	spec = spec.Canonical()
	h := uint64(offset64)
	h = fnv1aLine(h, fmt.Sprintf("spec=%d:%s", len(spec.Name), spec.Name))
	h = fnv1aLine(h, fmt.Sprintf("registry=%d:%s", len(registry), registry))
	for bi, b := range spec.Blocks {
		h = fnv1aLine(h, fmt.Sprintf("block=%d", bi))
		for _, ax := range b.Axes {
			h = fnv1aLine(h, fmt.Sprintf("axis=%d:%s", len(ax.Name), ax.Name))
			for _, v := range ax.Values {
				h = fnv1aLine(h, fmt.Sprintf("value=%d:%s", len(v), v))
			}
		}
	}
	for _, ax := range spec.Axes {
		h = fnv1aLine(h, fmt.Sprintf("axis=%d:%s", len(ax.Name), ax.Name))
		for _, v := range ax.Values {
			h = fnv1aLine(h, fmt.Sprintf("value=%d:%s", len(v), v))
		}
	}
	h = fnv1aLine(h, fmt.Sprintf("seeds=%d", seeds))
	h = fnv1aLine(h, fmt.Sprintf("window=%d", window))
	h = fnv1aLine(h, fmt.Sprintf("base=%d", baseSeed))
	h = fnv1aLine(h, fmt.Sprintf("sample=%d@%d", sampleN, sampleSeed))
	return fmt.Sprintf("%016x", h)
}

// ShardFormatVersion versions the ShardResult envelope; readers reject
// envelopes written by an incompatible format.
const ShardFormatVersion = 1

// ShardResult is the serialized output of one shard of a sweep: the
// sweep's fingerprint and spec, the shard coordinates, the shard's
// per-scenario aggregates in enumeration order, and its partial summary.
// A complete set of envelopes recombines via MergeShards into a report
// byte-identical to the unsharded sweep's.
type ShardResult struct {
	Version     int      `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Spec        *Spec    `json:"spec"`
	Shard       Shard    `json:"shard"`
	Scenarios   []*Stats `json:"scenarios"`
	Summary     *Summary `json:"summary"`

	// Mallocs is the executing worker's heap-allocation delta
	// (runtime.MemStats.Mallocs) across this shard's sweep. It rides the
	// submit request as a query parameter, not the envelope — the
	// envelope stays byte-identical to the serial sweep's — so it is
	// excluded from serialization.
	Mallocs int64 `json:"-"`
}

// Write serializes the envelope as indented JSON.
func (sr *ShardResult) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sr)
}

// ReadShardResult decodes one shard envelope and validates its framing.
// Unknown JSON fields are rejected deliberately: an envelope written by a
// future format that grew fields would otherwise decode "successfully"
// with those fields silently dropped, and a merge would fabricate a
// complete-looking report from data it did not understand. Compatible
// format evolution bumps ShardFormatVersion instead.
func ReadShardResult(r io.Reader) (*ShardResult, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sr ShardResult
	if err := dec.Decode(&sr); err != nil {
		return nil, fmt.Errorf("scenario: decode shard result: %w", err)
	}
	if err := sr.Validate(); err != nil {
		return nil, err
	}
	return &sr, nil
}

// Validate checks the envelope's framing: the format version, the shard
// coordinates, the presence of spec and summary, and agreement between
// the scenario list and the summary's count.
func (sr *ShardResult) Validate() error {
	if sr.Version != ShardFormatVersion {
		return fmt.Errorf("scenario: shard result format version %d, want %d", sr.Version, ShardFormatVersion)
	}
	if err := sr.Shard.Validate(); err != nil {
		return err
	}
	if sr.Spec == nil {
		return fmt.Errorf("scenario: shard result %s has no spec", sr.Shard)
	}
	if sr.Summary == nil {
		return fmt.Errorf("scenario: shard result %s has no summary", sr.Shard)
	}
	if len(sr.Scenarios) != sr.Summary.Scenarios {
		return fmt.Errorf("scenario: shard result %s carries %d scenarios but its summary counts %d",
			sr.Shard, len(sr.Scenarios), sr.Summary.Scenarios)
	}
	return nil
}

// MergeShards recombines a complete set of shard outputs into the stats
// stream and summary of the equivalent unsharded sweep. It requires
// exactly one envelope for every shard 1..n of the same sweep (same
// fingerprint and shard count); envelopes may arrive in any order and are
// reassembled by shard index — the partition is contiguous, so
// concatenation in index order equals enumeration order and the merged
// output is byte-identical to a fresh serial run.
func MergeShards(shards []*ShardResult) ([]*Stats, *Summary, error) {
	if len(shards) == 0 {
		return nil, nil, fmt.Errorf("scenario: merge needs at least one shard result")
	}
	first := shards[0]
	count := first.Shard.Count
	if len(shards) != count {
		return nil, nil, fmt.Errorf("scenario: have %d shard results for a %d-way partition", len(shards), count)
	}
	byIndex := make([]*ShardResult, count+1)
	for _, sr := range shards {
		if sr.Fingerprint != first.Fingerprint {
			return nil, nil, fmt.Errorf("scenario: shard %s fingerprint %s does not match %s — shards come from different sweeps",
				sr.Shard, sr.Fingerprint, first.Fingerprint)
		}
		if sr.Shard.Count != count {
			return nil, nil, fmt.Errorf("scenario: shard %s mixed into a %d-way partition", sr.Shard, count)
		}
		if err := sr.Shard.Validate(); err != nil {
			return nil, nil, err
		}
		if byIndex[sr.Shard.Index] != nil {
			return nil, nil, fmt.Errorf("scenario: duplicate shard %s", sr.Shard)
		}
		byIndex[sr.Shard.Index] = sr
	}
	var stats []*Stats
	sum := &Summary{Spec: first.Spec.Name}
	for i := 1; i <= count; i++ {
		sr := byIndex[i]
		if len(sr.Scenarios) != sr.Summary.Scenarios {
			return nil, nil, fmt.Errorf("scenario: shard %s carries %d scenarios but its summary counts %d",
				sr.Shard, len(sr.Scenarios), sr.Summary.Scenarios)
		}
		stats = append(stats, sr.Scenarios...)
		sum.Scenarios += sr.Summary.Scenarios
		sum.Trials += sr.Summary.Trials
		sum.Errors += sr.Summary.Errors
		sum.Successes += sr.Summary.Successes
		sum.TotalRounds += sr.Summary.TotalRounds
	}
	if sum.Trials > 0 {
		sum.SuccessRate = float64(sum.Successes) / float64(sum.Trials)
	}
	return stats, sum, nil
}
