package scenario

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

// fp fingerprints a spec under fixed sweep parameters — the composition
// tests only care about spec-content sensitivity.
func fp(s *Spec) string { return Fingerprint(s, "test/1", 2, 10, 1, 0, 0) }

// sameIDs fails the test unless both specs enumerate exactly the same
// scenario IDs (idSet lives in property_test.go).
func sameIDs(t *testing.T, a, b *Spec) {
	t.Helper()
	ia, ib := idSet(t, a), idSet(t, b)
	if len(ia) != len(ib) {
		t.Fatalf("ID set sizes differ: %d vs %d", len(ia), len(ib))
	}
	for id := range ia {
		if !ib[id] {
			t.Fatalf("ID %s missing from second enumeration", id)
		}
	}
}

// scramble returns a deep copy of a composed spec with blocks, axes and
// values reordered (and some values duplicated) — content-identical,
// syntactically different.
func scramble(s *Spec, r *xrand.Rand) *Spec {
	out := &Spec{Name: s.Name, Seeds: s.Seeds, BaseSeed: s.BaseSeed, Window: s.Window}
	out.Blocks = make([]Block, len(s.Blocks))
	for i, b := range s.Blocks {
		axes := make([]Axis, len(b.Axes))
		for j, ax := range b.Axes {
			vals := make([]string, len(ax.Values))
			copy(vals, ax.Values)
			// Duplicate one value sometimes; canonicalization dedups.
			if len(vals) > 0 && r.Bool() {
				vals = append(vals, vals[r.Intn(len(vals))])
			}
			r.Shuffle(len(vals), func(a, b int) { vals[a], vals[b] = vals[b], vals[a] })
			axes[j] = Axis{Name: ax.Name, Values: vals}
		}
		r.Shuffle(len(axes), func(a, b int) { axes[a], axes[b] = axes[b], axes[a] })
		out.Blocks[i] = Block{Axes: axes}
	}
	r.Shuffle(len(out.Blocks), func(a, b int) { out.Blocks[a], out.Blocks[b] = out.Blocks[b], out.Blocks[a] })
	return out
}

// TestComposedFingerprintInvariance checks the core canonicalization
// property on the built-in composed specs: reordering blocks, axes
// within blocks, and values within axes — and duplicating values or
// whole blocks — changes neither the fingerprint nor the enumerated
// scenario IDs.
func TestComposedFingerprintInvariance(t *testing.T) {
	t.Parallel()

	for _, name := range []string{"adversarial", "family"} {
		spec, err := BuiltinSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		want := fp(spec)
		r := xrand.New(11)
		for round := 0; round < 5; round++ {
			perm := scramble(spec, r)
			if got := fp(perm); got != want {
				t.Fatalf("spec %q round %d: scrambled fingerprint %s != %s", name, round, got, want)
			}
		}
		// Duplicating an entire block is also identity: the canonical
		// form dedups it.
		dup, err := BuiltinSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		dup.Blocks = append(dup.Blocks, dup.Blocks[0])
		if got := fp(dup); got != want {
			t.Fatalf("spec %q: duplicated block changed fingerprint %s != %s", name, got, want)
		}
		if name == "adversarial" { // family is too large to enumerate twice here
			sameIDs(t, spec, scramble(spec, r))
		}
	}
}

// TestFlatVsComposedFingerprintEquality checks that a composition which
// collapses to a single block shares its fingerprint — and therefore its
// shard envelopes and cache keys — with the equivalent flat spec
// authored in canonical form (axes sorted by name, values sorted).
func TestFlatVsComposedFingerprintEquality(t *testing.T) {
	t.Parallel()

	flat := &Spec{
		Name: "pair",
		Axes: []Axis{
			{Name: "class", Values: []string{"4"}},
			{Name: "goal", Values: []string{"treasure"}},
			{Name: "server", Values: []string{"-1", "0"}},
		},
		Seeds: 2,
	}
	composed := &Spec{
		Name: "pair",
		Blocks: []Block{
			{Axes: []Axis{
				{Name: "server", Values: []string{"0", "-1"}},
				{Name: "goal", Values: []string{"treasure"}},
				{Name: "class", Values: []string{"4"}},
			}},
		},
		Seeds: 2,
	}
	// The same space split across two blocks differing on one axis also
	// merges back to the flat form.
	split := &Spec{
		Name: "pair",
		Blocks: []Block{
			{Axes: []Axis{
				{Name: "goal", Values: []string{"treasure"}},
				{Name: "class", Values: []string{"4"}},
				{Name: "server", Values: []string{"0"}},
			}},
			{Axes: []Axis{
				{Name: "server", Values: []string{"-1"}},
				{Name: "class", Values: []string{"4"}},
				{Name: "goal", Values: []string{"treasure"}},
			}},
		},
		Seeds: 2,
	}
	want := fp(flat)
	if got := fp(composed); got != want {
		t.Fatalf("single-block composed fingerprint %s != flat %s", got, want)
	}
	if got := fp(split); got != want {
		t.Fatalf("split composed fingerprint %s != flat %s", got, want)
	}
	sameIDs(t, flat, composed)
	sameIDs(t, flat, split)

	// And the collapse is visible in the matrix: the composed forms
	// enumerate as flat canonical specs.
	m, err := NewMatrix(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spec().Blocks) != 0 || len(m.Spec().Axes) != 3 {
		t.Fatalf("split spec did not collapse to flat: %+v", m.Spec())
	}
}

// TestRandomComposedCanonicalInvariance is the quick-check pass: random
// composed specs (fixed seed) fingerprint identically under any
// scrambling of their authored order.
func TestRandomComposedCanonicalInvariance(t *testing.T) {
	t.Parallel()

	names := []string{"goal", "class", "noise", "param", "server"}
	pools := map[string][]string{
		"goal":   {"treasure", "printing", "transfer", "control"},
		"class":  {"2", "4", "8"},
		"noise":  {"0", "0.1", "0.3"},
		"param":  {"0", "2", "5"},
		"server": {"0", "-1", "obstinate"},
	}
	r := xrand.New(99)
	for iter := 0; iter < 60; iter++ {
		spec := &Spec{Name: "rand", Seeds: 1}
		nblocks := 1 + r.Intn(3)
		for b := 0; b < nblocks; b++ {
			var axes []Axis
			for _, name := range names {
				if r.Float64() < 0.4 {
					continue
				}
				pool := pools[name]
				n := 1 + r.Intn(len(pool))
				perm := r.Perm(len(pool))[:n]
				vals := make([]string, n)
				for i, p := range perm {
					vals[i] = pool[p]
				}
				axes = append(axes, Axis{Name: name, Values: vals})
			}
			if len(axes) == 0 {
				axes = append(axes, Axis{Name: "goal", Values: []string{"treasure"}})
			}
			spec.Blocks = append(spec.Blocks, Block{Axes: axes})
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid spec: %v", iter, err)
		}
		want := fp(spec)
		for round := 0; round < 3; round++ {
			if got := fp(scramble(spec, r)); got != want {
				t.Fatalf("iter %d round %d: fingerprint drifted %s != %s", iter, round, got, want)
			}
		}
	}
}

// TestComposedMatrixDecoding pins the segment arithmetic: sizes add up,
// every index decodes to its own block's axes, and block boundaries land
// where the canonical block sizes say.
func TestComposedMatrixDecoding(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	canon := m.Spec()
	var want int64
	blockSizes := make([]int64, len(canon.Blocks))
	for i, b := range canon.Blocks {
		size := int64(1)
		for _, ax := range b.Axes {
			size *= int64(len(ax.Values))
		}
		blockSizes[i] = size
		want += size
	}
	if m.Size() != want {
		t.Fatalf("matrix size %d != block-size sum %d", m.Size(), want)
	}

	// Walk every scenario; its axis names must be exactly its block's.
	offset := int64(0)
	for bi, b := range canon.Blocks {
		names := make([]string, len(b.Axes))
		for i, ax := range b.Axes {
			names[i] = ax.Name
		}
		for _, idx := range []int64{offset, offset + blockSizes[bi] - 1} {
			sc := m.At(idx)
			if len(sc.Values) != len(names) {
				t.Fatalf("index %d: %d coordinates, block %d has %d axes", idx, len(sc.Values), bi, len(names))
			}
			for i, av := range sc.Values {
				if av.Name != names[i] {
					t.Fatalf("index %d coordinate %d: axis %q, want %q", idx, i, av.Name, names[i])
				}
			}
		}
		offset += blockSizes[bi]
	}

	// Index 0 of each block assigns every axis its first value.
	first := m.At(0)
	for i, av := range first.Values {
		if want := canon.Blocks[0].Axes[i].Values[0]; av.Value != want {
			t.Fatalf("index 0 coordinate %q = %q, want first value %q", av.Name, av.Value, want)
		}
	}
}

// TestComposedOverflow checks that block cross-products and the union
// sum are both guarded against int64 overflow.
func TestComposedOverflow(t *testing.T) {
	t.Parallel()

	wide := func(n int) []Axis {
		axes := make([]Axis, n)
		for i := range axes {
			axes[i] = Axis{Name: "a" + string(rune('A'+i/26)) + string(rune('a'+i%26)), Values: []string{"0", "1"}}
		}
		return axes
	}
	// One block of 64 binary axes: 2^64 scenarios overflows.
	over := &Spec{Name: "over", Blocks: []Block{{Axes: wide(64)}}}
	if _, err := NewMatrix(over); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("2^64 block accepted: %v", err)
	}
	// Two blocks of 2^62 each: each fits, the union does not.
	a := wide(62)
	b := wide(62)
	b[0].Name = "zz" // keep the blocks distinct so they cannot merge
	sum := &Spec{Name: "sum", Blocks: []Block{{Axes: a}, {Axes: b}}}
	if _, err := NewMatrix(sum); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("2^62+2^62 union accepted: %v", err)
	}
}

// TestComposedRestrict pins Restrict's per-block semantics on a real
// composed spec.
func TestComposedRestrict(t *testing.T) {
	t.Parallel()

	// Restricting to the treasure goal drops the other blocks.
	spec, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Restrict("goal", "treasure"); err != nil {
		t.Fatal(err)
	}
	if len(spec.Blocks) != 1 {
		t.Fatalf("treasure restriction kept %d blocks, want 1", len(spec.Blocks))
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Each(func(sc *Scenario) error {
		if g, _ := sc.Get("goal"); g != "treasure" {
			t.Fatalf("restricted enumeration leaked goal %q", g)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Restricting on an axis only some blocks carry drops the rest:
	// drift exists on the dialect and fsm blocks, not on treasure's.
	spec2, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	before := len(spec2.Blocks)
	if err := spec2.Restrict("drift", "0.25"); err != nil {
		t.Fatal(err)
	}
	if len(spec2.Blocks) != before-1 {
		t.Fatalf("drift restriction kept %d of %d blocks, want %d", len(spec2.Blocks), before, before-1)
	}

	// A value on no block's axis is an error, as is a missing axis and
	// an emptying restriction.
	spec3, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec3.Restrict("goal", "nosuch"); err == nil {
		t.Fatal("unknown goal value accepted")
	}
	spec4, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec4.Restrict("nosuchaxis", "1"); err == nil {
		t.Fatal("unknown axis accepted")
	}
}

// TestAxesUnion pins the tabular view of a composed spec: axis names in
// first-appearance order, values unioned, Everywhere reflecting whether
// every block carries the axis.
func TestAxesUnion(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	views := spec.AxesUnion()
	byName := make(map[string]AxisView, len(views))
	for _, v := range views {
		byName[v.Name] = v
	}
	if v, ok := byName["goal"]; !ok || !v.Everywhere {
		t.Fatalf("goal view %+v: want present everywhere", v)
	}
	if len(byName["goal"].Values) != 5 {
		t.Fatalf("goal union %v: want 5 goals", byName["goal"].Values)
	}
	if v, ok := byName["drift"]; !ok || v.Everywhere {
		t.Fatalf("drift view %+v: want present but not everywhere (treasure block lacks it)", v)
	}
	if v, ok := byName["machine"]; !ok || v.Everywhere {
		t.Fatalf("machine view %+v: want fsm-only", v)
	}

	// Flat specs are the identity case.
	flat, err := BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	fviews := flat.AxesUnion()
	if len(fviews) != len(flat.Axes) {
		t.Fatalf("flat union has %d views for %d axes", len(fviews), len(flat.Axes))
	}
	for i, v := range fviews {
		if v.Name != flat.Axes[i].Name || !v.Everywhere {
			t.Fatalf("flat view %d = %+v, want axis %q everywhere", i, v, flat.Axes[i].Name)
		}
	}
}
