package scenario

import (
	"fmt"
	"sort"
)

// BuiltinSpec returns a copy of the named built-in scenario spec.
//
//	default  the stock cross-product: every built-in goal crossed with
//	         class sizes, best/worst/obstinate servers, noise levels,
//	         slowness and sensing patience — 288 scenarios
//	quick    a reduced slice of the same axes for smoke runs
func BuiltinSpec(name string) (*Spec, error) {
	switch name {
	case "default":
		return &Spec{
			Name: "default",
			Axes: []Axis{
				{Name: "goal", Values: []string{"control", "printing", "transfer", "treasure"}},
				{Name: "class", Values: Ints(4, 8)},
				{Name: "server", Values: []string{"0", "-1", "obstinate"}},
				{Name: "noise", Values: Floats(0, 0.1, 0.3)},
				{Name: "slow", Values: Ints(0, 2)},
				{Name: "patience", Values: Ints(0, 16)},
				{Name: "rounds", Values: Ints(800)},
			},
			Seeds:    2,
			BaseSeed: 1,
			Window:   10,
		}, nil
	case "quick":
		return &Spec{
			Name: "quick",
			Axes: []Axis{
				{Name: "goal", Values: []string{"printing", "treasure"}},
				{Name: "class", Values: Ints(4)},
				{Name: "server", Values: []string{"0", "-1", "obstinate"}},
				{Name: "noise", Values: Floats(0, 0.2)},
				{Name: "rounds", Values: Ints(300)},
			},
			Seeds:    1,
			BaseSeed: 1,
			Window:   10,
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown built-in spec %q (have: %v)", name, BuiltinSpecNames())
	}
}

// BuiltinSpecNames lists the built-in spec names.
func BuiltinSpecNames() []string {
	names := []string{"default", "quick"}
	sort.Strings(names)
	return names
}
