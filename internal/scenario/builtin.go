package scenario

import (
	"fmt"
	"sort"
)

// BuiltinSpec returns a copy of the named built-in scenario spec.
//
//	default      the stock cross-product: every built-in goal crossed
//	             with class sizes, best/worst/obstinate servers, noise
//	             levels, slowness and sensing patience — 288 scenarios
//	quick        a reduced slice of the same axes for smoke runs
//	adversarial  a composed spec exercising the adversary wrappers:
//	             dialect goals under byzantine/mislead/drift, treasure
//	             under byzantine/mislead (no dialect to drift), and a
//	             slice of the fsm family — per-family blocks carry only
//	             the axes their goals accept
//	family       a composed spec sweeping a whole generated fsm machine
//	             space (2x3x2, 4096 machines) under adversarial axes plus
//	             a stock-goal block — over 130,000 scenarios, enumerated
//	             lazily; sweep it sampled or sharded
func BuiltinSpec(name string) (*Spec, error) {
	switch name {
	case "default":
		return &Spec{
			Name: "default",
			Axes: []Axis{
				{Name: "goal", Values: []string{"control", "printing", "transfer", "treasure"}},
				{Name: "class", Values: Ints(4, 8)},
				{Name: "server", Values: []string{"0", "-1", "obstinate"}},
				{Name: "noise", Values: Floats(0, 0.1, 0.3)},
				{Name: "slow", Values: Ints(0, 2)},
				{Name: "patience", Values: Ints(0, 16)},
				{Name: "rounds", Values: Ints(800)},
			},
			Seeds:    2,
			BaseSeed: 1,
			Window:   10,
		}, nil
	case "quick":
		return &Spec{
			Name: "quick",
			Axes: []Axis{
				{Name: "goal", Values: []string{"printing", "treasure"}},
				{Name: "class", Values: Ints(4)},
				{Name: "server", Values: []string{"0", "-1", "obstinate"}},
				{Name: "noise", Values: Floats(0, 0.2)},
				{Name: "rounds", Values: Ints(300)},
			},
			Seeds:    1,
			BaseSeed: 1,
			Window:   10,
		}, nil
	case "adversarial":
		return &Spec{
			Name: "adversarial",
			Blocks: []Block{
				// Dialect goals accept the full adversary surface,
				// including Markov-switching dialect drift.
				{Axes: []Axis{
					{Name: "goal", Values: []string{"control", "printing", "transfer"}},
					{Name: "class", Values: Ints(4)},
					{Name: "server", Values: []string{"0", "-1"}},
					{Name: "byzantine", Values: Ints(0, 4)},
					{Name: "mislead", Values: Floats(0, 0.25)},
					{Name: "drift", Values: Floats(0, 0.25)},
					{Name: "rounds", Values: Ints(600)},
				}},
				// Treasure servers share one language — no drift axis.
				{Axes: []Axis{
					{Name: "goal", Values: []string{"treasure"}},
					{Name: "class", Values: Ints(4)},
					{Name: "server", Values: []string{"0", "-1"}},
					{Name: "byzantine", Values: Ints(0, 4)},
					{Name: "mislead", Values: Floats(0, 0.25)},
					{Name: "rounds", Values: Ints(600)},
				}},
				// A slice of the generated fsm family; space/machine are
				// axes only this block carries.
				{Axes: []Axis{
					{Name: "goal", Values: []string{"fsm"}},
					{Name: "space", Values: []string{"2x2x2"}},
					{Name: "machine", Values: Ints(1, 6, 27)},
					{Name: "class", Values: Ints(4)},
					{Name: "server", Values: []string{"0", "-1"}},
					{Name: "drift", Values: Floats(0, 0.25)},
					{Name: "rounds", Values: Ints(600)},
				}},
			},
			Seeds:    2,
			BaseSeed: 1,
			Window:   10,
		}, nil
	case "family":
		return &Spec{
			Name: "family",
			Blocks: []Block{
				// Every machine of the 2x3x2 space (4096 of them) under
				// the adversarial axes — 131,072 scenarios in this block
				// alone. The matrix decodes scenarios lazily, so listing,
				// sampling and sharding stay cheap.
				{Axes: []Axis{
					{Name: "goal", Values: []string{"fsm"}},
					{Name: "space", Values: []string{"2x3x2"}},
					{Name: "machine", Values: IntRange(0, 4095)},
					{Name: "class", Values: Ints(4)},
					{Name: "server", Values: []string{"0", "-1"}},
					{Name: "drift", Values: Floats(0, 0.25)},
					{Name: "byzantine", Values: Ints(0, 2)},
					{Name: "mislead", Values: Floats(0, 0.25)},
					{Name: "noise", Values: Floats(0, 0.1)},
					{Name: "rounds", Values: Ints(400)},
				}},
				// A stock-goal slice rides along in the same sweep.
				{Axes: []Axis{
					{Name: "goal", Values: []string{"control", "printing", "transfer"}},
					{Name: "class", Values: Ints(4, 8)},
					{Name: "server", Values: []string{"0", "-1"}},
					{Name: "byzantine", Values: Ints(0, 2, 4)},
					{Name: "mislead", Values: Floats(0, 0.1, 0.25)},
					{Name: "rounds", Values: Ints(400)},
				}},
			},
			Seeds:    1,
			BaseSeed: 1,
			Window:   10,
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown built-in spec %q (have: %v)", name, BuiltinSpecNames())
	}
}

// BuiltinSpecNames lists the built-in spec names.
func BuiltinSpecNames() []string {
	names := []string{"adversarial", "default", "family", "quick"}
	sort.Strings(names)
	return names
}
