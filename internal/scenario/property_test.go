package scenario

import (
	"strings"
	"testing"
)

// idSet expands a spec fully and returns every scenario ID.
func idSet(t *testing.T, spec *Spec) map[string]bool {
	t.Helper()
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool, m.Size())
	if err := m.Each(func(sc *Scenario) error {
		ids[sc.ID()] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

// reversed returns a copy of vs in reverse order.
func reversed(vs []string) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[len(vs)-1-i] = v
	}
	return out
}

// TestIDsStableAcrossEnumerationOrder checks that scenario IDs depend only
// on content: permuting the spec's axes and reversing every value list
// renumbers the scenarios but yields the identical ID set.
func TestIDsStableAcrossEnumerationOrder(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	ids := idSet(t, spec)

	perm, err := BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the axis order and every value list.
	for i, j := 0, len(perm.Axes)-1; i < j; i, j = i+1, j-1 {
		perm.Axes[i], perm.Axes[j] = perm.Axes[j], perm.Axes[i]
	}
	for i := range perm.Axes {
		perm.Axes[i].Values = reversed(perm.Axes[i].Values)
	}
	permIDs := idSet(t, perm)

	if len(ids) != len(permIDs) {
		t.Fatalf("ID set sizes differ: %d vs %d", len(ids), len(permIDs))
	}
	for id := range ids {
		if !permIDs[id] {
			t.Fatalf("ID %s missing from permuted enumeration", id)
		}
	}
}

// TestIDsCollisionFree checks that the full built-in matrices assign every
// scenario a distinct ID.
func TestIDsCollisionFree(t *testing.T) {
	t.Parallel()

	for _, name := range BuiltinSpecNames() {
		spec, err := BuiltinSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMatrix(spec)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]int64, m.Size())
		if err := m.Each(func(sc *Scenario) error {
			id := sc.ID()
			if prev, dup := seen[id]; dup {
				t.Fatalf("spec %q: scenarios %d and %d collide on ID %s",
					name, prev, sc.Index, id)
			}
			seen[id] = sc.Index
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int64(len(seen)) != m.Size() {
			t.Fatalf("spec %q: %d IDs for %d scenarios", name, len(seen), m.Size())
		}
	}
}

// TestHashEncodingIsInjective checks that the content hash cannot be
// forged by embedding the separator characters in axis values: a single
// axis whose value spells out "x\nb=y" must not collide with the two-axis
// assignment {a: x, b: y}.
func TestHashEncodingIsInjective(t *testing.T) {
	t.Parallel()

	one := &Scenario{Values: []AxisValue{{Name: "a", Value: "x\n1:b=1:y"}}}
	two := &Scenario{Values: []AxisValue{{Name: "a", Value: "x"}, {Name: "b", Value: "y"}}}
	if one.Hash() == two.Hash() {
		t.Fatal("separator-injected value collides with a two-axis assignment")
	}
	eq := &Scenario{Values: []AxisValue{{Name: "a", Value: "x=b"}}}
	ne := &Scenario{Values: []AxisValue{{Name: "a=b", Value: "x"}}}
	if eq.Hash() == ne.Hash() {
		t.Fatal("'=' in a value collides with '=' in a name")
	}
}

// TestSampleDeterministicPerSeed checks that Sample is a pure function of
// (n, seed): repeated draws agree, the indices are distinct, sorted and in
// range, and a different seed draws a different subset.
func TestSampleDeterministicPerSeed(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	a := m.Sample(n, 7)
	b := m.Sample(n, 7)
	if len(a) != n || len(b) != n {
		t.Fatalf("sample sizes %d, %d != %d", len(a), len(b), n)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed samples differ at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= m.Size() {
			t.Fatalf("sample index %d out of range [0,%d)", a[i], m.Size())
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("sample not strictly ascending at %d: %d after %d", i, a[i], a[i-1])
		}
	}
	c := m.Sample(n, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 drew the identical sample")
	}

	// n >= Size returns the whole matrix.
	all := m.Sample(int(m.Size())+5, 1)
	if int64(len(all)) != m.Size() {
		t.Fatalf("oversized sample returned %d of %d", len(all), m.Size())
	}
	for i, idx := range all {
		if idx != int64(i) {
			t.Fatalf("oversized sample not the identity at %d: %d", i, idx)
		}
	}
}

// TestMatrixAtDecodesMixedRadix spot-checks the odometer: the first axis
// varies slowest and index 0 takes every first value.
func TestMatrixAtDecodesMixedRadix(t *testing.T) {
	t.Parallel()

	spec := &Spec{
		Name: "odometer",
		Axes: []Axis{
			{Name: "goal", Values: []string{"treasure"}},
			{Name: "a", Values: []string{"x", "y"}},
			{Name: "b", Values: Ints(1, 2, 3)},
		},
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 6 {
		t.Fatalf("size = %d, want 6", m.Size())
	}
	sc := m.At(0)
	if got := sc.Str("a", ""); got != "x" {
		t.Fatalf("At(0) a=%q, want x", got)
	}
	if got := sc.Str("b", ""); got != "1" {
		t.Fatalf("At(0) b=%q, want 1", got)
	}
	sc = m.At(4) // a index 1, b index 1
	if got := sc.Str("a", ""); got != "y" {
		t.Fatalf("At(4) a=%q, want y", got)
	}
	if got := sc.Str("b", ""); got != "2" {
		t.Fatalf("At(4) b=%q, want 2", got)
	}
}

func TestSpecValidateAndRestrict(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Restrict("goal", "transfer", "control"); err != nil {
		t.Fatal(err)
	}
	// Spec order is preserved, not the requested order.
	if got := spec.axis("goal").Values; len(got) != 2 || got[0] != "control" || got[1] != "transfer" {
		t.Fatalf("restricted goal axis = %v", got)
	}
	if err := spec.Restrict("goal", "nosuch"); err == nil {
		t.Fatal("restriction to a missing value accepted")
	}
	if err := spec.Restrict("nosuch", "x"); err == nil {
		t.Fatal("restriction of a missing axis accepted")
	}

	bad := &Spec{Name: "bad", Axes: []Axis{{Name: "a"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("axis without values validated")
	}
	dup := &Spec{Name: "dup", Axes: []Axis{
		{Name: "a", Values: Ints(1)},
		{Name: "a", Values: Ints(2)},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate axis names validated")
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	t.Parallel()

	if _, err := ReadSpec(strings.NewReader(`{"name":"x","axes":[{"name":"goal","values":["treasure"]}],"bogus":1}`)); err == nil {
		t.Fatal("unknown spec field accepted")
	}
	spec, err := ReadSpec(strings.NewReader(`{"name":"x","seeds":3,"axes":[{"name":"goal","values":["treasure"]},{"name":"class","values":["4"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.seeds() != 3 || spec.Name != "x" {
		t.Fatalf("decoded spec wrong: %+v", spec)
	}
}

func TestRegistryBindRejects(t *testing.T) {
	t.Parallel()

	reg := Builtin()
	mk := func(axes ...Axis) *Scenario {
		spec := &Spec{Name: "t", Axes: axes}
		m, err := NewMatrix(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m.At(0)
	}

	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"missing goal", mk(Axis{Name: "class", Values: Ints(4)})},
		{"unknown goal", mk(Axis{Name: "goal", Values: []string{"nosuch"}})},
		{"unknown axis", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "bogus", Values: Ints(1)})},
		{"server out of class", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "class", Values: Ints(4)},
			Axis{Name: "server", Values: Ints(9)})},
		{"oracle vs obstinate", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "server", Values: []string{"obstinate"}},
			Axis{Name: "user", Values: []string{"oracle"}})},
		{"unknown user", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "user", Values: []string{"psychic"}})},
		{"noise out of range", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "noise", Values: Floats(1.5)})},
		{"treasure param", mk(
			Axis{Name: "goal", Values: []string{"treasure"}},
			Axis{Name: "param", Values: Ints(3)})},
	}
	for _, tc := range cases {
		if _, err := reg.Bind(tc.sc); err == nil {
			t.Errorf("%s: Bind accepted", tc.name)
		}
	}

	// A negative server index counts from the end of the class.
	sc := mk(
		Axis{Name: "goal", Values: []string{"treasure"}},
		Axis{Name: "class", Values: Ints(4)},
		Axis{Name: "server", Values: Ints(-1)})
	if _, err := reg.Bind(sc); err != nil {
		t.Fatalf("server=-1: %v", err)
	}
}
