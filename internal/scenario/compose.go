package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Block is one sub-matrix of a composed spec: an independent axis list
// whose cross-product contributes its scenarios to the spec's space (see
// Spec.Blocks). Blocks let different scenario families carry different —
// dependent — axes: an fsm block declares machine/space axes the stock
// goals would reject, a treasure block omits the drift axis its servers
// cannot honor.
type Block struct {
	Axes []Axis `json:"axes"`
}

// canonicalBlock returns a deep copy of b in canonical form: axes sorted
// by name, values sorted lexicographically and deduped. Canonical form is
// what makes composed-spec identity content-derived — any authored
// ordering of the same block encodes, enumerates and fingerprints
// identically.
func canonicalBlock(b Block) Block {
	axes := make([]Axis, len(b.Axes))
	for i, ax := range b.Axes {
		vals := make([]string, len(ax.Values))
		copy(vals, ax.Values)
		sort.Strings(vals)
		kept := vals[:0]
		for j, v := range vals {
			if j == 0 || v != vals[j-1] {
				kept = append(kept, v)
			}
		}
		axes[i] = Axis{Name: ax.Name, Values: kept}
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].Name < axes[j].Name })
	return Block{Axes: axes}
}

// encodeBlock renders a canonical block injectively (length-prefixed
// fields, newline-delimited lines) — the comparison and sort key of
// canonicalization and the unit the fingerprint folds.
func encodeBlock(b Block) string {
	var sb strings.Builder
	for _, ax := range b.Axes {
		fmt.Fprintf(&sb, "axis=%d:%s\n", len(ax.Name), ax.Name)
		for _, v := range ax.Values {
			fmt.Fprintf(&sb, "value=%d:%s\n", len(v), v)
		}
	}
	return sb.String()
}

// sameAxisNames reports whether two canonical blocks declare the same
// axis names (both are sorted, so positional comparison suffices).
func sameAxisNames(a, b Block) bool {
	if len(a.Axes) != len(b.Axes) {
		return false
	}
	for i := range a.Axes {
		if a.Axes[i].Name != b.Axes[i].Name {
			return false
		}
	}
	return true
}

// sameValues reports whether two canonical axes hold identical value
// lists.
func sameValues(a, b Axis) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// tryMerge merges two canonical blocks when they describe slices of one
// larger cross-product: identical axis names with identical values on
// every axis except at most one, which takes the union. It returns the
// merged block (re-canonicalized) and whether the merge applied.
func tryMerge(a, b Block) (Block, bool) {
	if !sameAxisNames(a, b) {
		return Block{}, false
	}
	diff := -1
	for i := range a.Axes {
		if !sameValues(a.Axes[i], b.Axes[i]) {
			if diff >= 0 {
				return Block{}, false
			}
			diff = i
		}
	}
	if diff < 0 {
		// Identical blocks: the merge is a dedup.
		return a, true
	}
	merged := Block{Axes: make([]Axis, len(a.Axes))}
	copy(merged.Axes, a.Axes)
	union := append(append([]string{}, a.Axes[diff].Values...), b.Axes[diff].Values...)
	merged.Axes[diff] = Axis{Name: a.Axes[diff].Name, Values: union}
	return canonicalBlock(merged), true
}

// Canonical returns the spec in canonical form. Flat specs are returned
// unchanged — their authored axis order is their enumeration order and
// fixes the index mapping, so it must stay byte-stable. Composed specs
// are rebuilt: every block canonicalized (axes sorted by name, values
// sorted and deduped), identical blocks deduped, blocks that are
// value-slices of one cross-product merged (deterministic fixpoint over
// the sorted block list), and the block list sorted by its injective
// encoding. A composition that reduces to exactly one block collapses to
// a flat spec, which is what makes a composed spec and its flat
// equivalent share a fingerprint — and through it, shards and cache
// entries. (Canonicalization is syntactic: multi-block compositions that
// cover the same scenario set through structurally different partitions
// may still fingerprint apart; per-scenario cache keys, being
// content-derived, are shared regardless.)
func (s *Spec) Canonical() *Spec {
	if len(s.Blocks) == 0 {
		return s
	}
	blocks := make([]Block, len(s.Blocks))
	for i, b := range s.Blocks {
		blocks[i] = canonicalBlock(b)
	}
	for {
		sort.Slice(blocks, func(i, j int) bool { return encodeBlock(blocks[i]) < encodeBlock(blocks[j]) })
		merged := false
	scan:
		for i := 0; i < len(blocks) && !merged; i++ {
			for j := i + 1; j < len(blocks); j++ {
				if m, ok := tryMerge(blocks[i], blocks[j]); ok {
					blocks[i] = m
					blocks = append(blocks[:j], blocks[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			break
		}
	}
	out := &Spec{Name: s.Name, Seeds: s.Seeds, BaseSeed: s.BaseSeed, Window: s.Window}
	if len(blocks) == 1 {
		out.Axes = blocks[0].Axes
	} else {
		out.Blocks = blocks
	}
	return out
}

// AxisView is one entry of AxesUnion: an axis with the union of its
// values across the whole spec, plus whether every block carries it (an
// axis absent from some block varies implicitly — the scenarios of that
// block take the axis's default).
type AxisView struct {
	Axis
	Everywhere bool
}

// AxesUnion flattens the spec's dimensions into one view per axis name,
// in first-appearance order with values in first-appearance order — the
// header row of any tabular rendering of a sweep. For flat specs it is
// exactly the axis list.
func (s *Spec) AxesUnion() []AxisView {
	if len(s.Blocks) == 0 {
		out := make([]AxisView, len(s.Axes))
		for i, ax := range s.Axes {
			out[i] = AxisView{Axis: ax, Everywhere: true}
		}
		return out
	}
	var order []string
	byName := make(map[string]*AxisView)
	seenIn := make(map[string]int)
	for _, b := range s.Blocks {
		for _, ax := range b.Axes {
			v := byName[ax.Name]
			if v == nil {
				v = &AxisView{Axis: Axis{Name: ax.Name}}
				byName[ax.Name] = v
				order = append(order, ax.Name)
			}
			seenIn[ax.Name]++
			for _, val := range ax.Values {
				dup := false
				for _, have := range v.Values {
					if have == val {
						dup = true
						break
					}
				}
				if !dup {
					v.Values = append(v.Values, val)
				}
			}
		}
	}
	out := make([]AxisView, len(order))
	for i, name := range order {
		v := byName[name]
		v.Everywhere = seenIn[name] == len(s.Blocks)
		out[i] = *v
	}
	return out
}
