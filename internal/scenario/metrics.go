package scenario

import "repro/internal/obs"

// Sweep- and cache-layer metrics. All call sites are per-chunk or
// per-scenario (never per-round or per-trial inner loops), so the
// mutex-guarded vec lookup and the time.Now pair around a chunk flush
// are noise against hundreds of engine rounds.
var (
	mScenarios = obs.Default().CounterVec("goalsweep_sweep_scenarios_total",
		"Scenarios completed by the sweep executor, by goal family.", "goal")
	mChunkSeconds = obs.Default().Histogram("goalsweep_sweep_chunk_seconds",
		"Wall-clock latency of one chunk flush through the batch engine.", nil)
	mChunkTrials = obs.Default().Histogram("goalsweep_sweep_chunk_trials",
		"Trials per flushed chunk.", obs.SizeBuckets)
	mCacheHits = obs.Default().Counter("goalsweep_cache_hits_total",
		"Scenario aggregates served from the result cache.")
	mCacheMisses = obs.Default().Counter("goalsweep_cache_misses_total",
		"Scenario aggregates not found in the result cache.")
	mCacheHeals = obs.Default().Counter("goalsweep_cache_heals_total",
		"Cache entries that were present but failed validation and were recomputed.")
)
