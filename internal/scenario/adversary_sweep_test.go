package scenario

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// numbersOnly strips a stat's identity (ID, coordinates) leaving the
// aggregates, so scenarios from specs with different axis sets can be
// compared numerically.
func numbersOnly(t *testing.T, st *Stats) string {
	t.Helper()
	clone := *st
	clone.ID = ""
	clone.Axes = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAdversaryZeroAxesAggregateParity is the safety property of the
// adversary wrappers: declaring byzantine=0, mislead=0, drift=0 must
// yield aggregates numerically identical to a sweep that never mentions
// the axes. The stack stays deterministic (slow/delay, no noise): trial
// seeds are content-derived, so the extra zero axes change the seed
// stream, and only deterministic executions can be expected to agree
// exactly — seeded byte parity of the wrappers themselves is pinned at
// the transcript level in the server package.
func TestAdversaryZeroAxesAggregateParity(t *testing.T) {
	t.Parallel()

	base := &Spec{
		Name: "parity",
		Axes: []Axis{
			{Name: "goal", Values: []string{"printing", "transfer", "treasure"}},
			{Name: "class", Values: Ints(4)},
			{Name: "server", Values: []string{"0", "-1", "obstinate"}},
			{Name: "slow", Values: Ints(0, 2)},
			{Name: "delay", Values: Ints(0, 1)},
			{Name: "rounds", Values: Ints(300)},
		},
		Seeds:    2,
		BaseSeed: 1,
	}
	wrapped := &Spec{
		Name: "parity",
		Axes: append(append([]Axis{}, base.Axes...),
			Axis{Name: "byzantine", Values: Ints(0)},
			Axis{Name: "mislead", Values: Floats(0)},
			Axis{Name: "drift", Values: Floats(0)},
		),
		Seeds:    2,
		BaseSeed: 1,
	}
	mb, err := NewMatrix(base)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := NewMatrix(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Size() != mw.Size() {
		t.Fatalf("sizes differ: %d vs %d", mb.Size(), mw.Size())
	}
	bStats, bSum := collectStats(t, mb, SweepConfig{Parallel: 2})
	wStats, wSum := collectStats(t, mw, SweepConfig{Parallel: 2})
	// The constant zero axes do not disturb enumeration order, so the
	// streams compare positionally.
	for i := range bStats {
		if a, b := numbersOnly(t, bStats[i]), numbersOnly(t, wStats[i]); a != b {
			t.Fatalf("scenario %d (%s): zero-budget adversary changed aggregates:\n%s\n%s",
				i, bStats[i].ID, a, b)
		}
	}
	if bSum.Successes != wSum.Successes || bSum.TotalRounds != wSum.TotalRounds ||
		bSum.Errors != wSum.Errors {
		t.Fatalf("summaries differ: %+v vs %+v", bSum, wSum)
	}
	if bSum.Successes == 0 || bSum.Successes == bSum.Trials {
		t.Fatalf("degenerate parity sweep: %d/%d successes", bSum.Successes, bSum.Trials)
	}
}

// TestAdversarialSweepDeterminism runs the composed adversarial builtin
// — seeded Byzantine corruption, misleading feedback and dialect drift
// all active — and checks the result stream is byte-identical across
// serial, parallel, trial-batched, and sharded-then-merged execution.
func TestAdversarialSweepDeterminism(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	wantStats, wantSum := collectStats(t, m, SweepConfig{Parallel: 1})
	want := marshal(wantStats) + marshal(wantSum)

	for _, cfg := range []SweepConfig{
		{Parallel: 4},
		{Parallel: 4, TrialBatch: 8},
		{Parallel: 2, ChunkTrials: 3},
	} {
		stats, sum := collectStats(t, m, cfg)
		if got := marshal(stats) + marshal(sum); got != want {
			t.Fatalf("%+v: adversarial sweep diverged from serial", cfg)
		}
	}

	// Shard three ways, merge, and compare the merged stream.
	fpr := Fingerprint(spec, "test/1", spec.seeds(), spec.window(), spec.baseSeed(), 0, 0)
	var shards []*ShardResult
	for i := 1; i <= 3; i++ {
		sh := Shard{Index: i, Count: 3}
		var stats []*Stats
		sum, err := m.Sweep(sh.Indices(m, nil), SweepConfig{
			Parallel: 2,
			OnStats:  func(st *Stats) error { stats = append(stats, st); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, &ShardResult{
			Version:     ShardFormatVersion,
			Fingerprint: fpr,
			Spec:        m.Spec(),
			Shard:       sh,
			Scenarios:   stats,
			Summary:     sum,
		})
	}
	mergedStats, mergedSum, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(mergedStats) + marshal(mergedSum); got != want {
		t.Fatalf("sharded-and-merged adversarial sweep diverged from serial")
	}
	if wantSum.Successes == 0 {
		t.Fatal("adversarial sweep succeeded nowhere; determinism check is vacuous")
	}
}

// TestFlatVsComposedCacheSharing checks that a composed spec warms the
// cache for its flat equivalent and vice versa: scenario cache keys are
// content-derived, so the second sweep must execute nothing.
func TestFlatVsComposedCacheSharing(t *testing.T) {
	t.Parallel()

	flat := &Spec{
		Name: "cache-pair",
		Axes: []Axis{
			{Name: "class", Values: []string{"4"}},
			{Name: "goal", Values: []string{"treasure"}},
			{Name: "rounds", Values: []string{"300"}},
			{Name: "server", Values: []string{"-1", "0"}},
		},
		Seeds:    2,
		BaseSeed: 1,
	}
	split := &Spec{
		Name: "cache-pair",
		Blocks: []Block{
			{Axes: []Axis{
				{Name: "goal", Values: []string{"treasure"}},
				{Name: "server", Values: []string{"0"}},
				{Name: "class", Values: []string{"4"}},
				{Name: "rounds", Values: []string{"300"}},
			}},
			{Axes: []Axis{
				{Name: "goal", Values: []string{"treasure"}},
				{Name: "server", Values: []string{"-1"}},
				{Name: "class", Values: []string{"4"}},
				{Name: "rounds", Values: []string{"300"}},
			}},
		},
		Seeds:    2,
		BaseSeed: 1,
	}
	mf, err := NewMatrix(flat)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMatrix(split)
	if err != nil {
		t.Fatal(err)
	}

	c, err := OpenCache(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	flatStats, cold := collectStats(t, mf, SweepConfig{Parallel: 2, Cache: c})
	if cold.CacheMisses != cold.Scenarios || cold.ExecutedTrials == 0 {
		t.Fatalf("cold flat sweep: %d misses for %d scenarios, %d executed",
			cold.CacheMisses, cold.Scenarios, cold.ExecutedTrials)
	}
	splitStats, warm := collectStats(t, ms, SweepConfig{Parallel: 2, Cache: c})
	if warm.CacheHits != warm.Scenarios || warm.CacheMisses != 0 || warm.ExecutedTrials != 0 {
		t.Fatalf("composed equivalent missed the flat sweep's cache: %d hits, %d misses, %d executed",
			warm.CacheHits, warm.CacheMisses, warm.ExecutedTrials)
	}
	// Same scenarios, same aggregates — only the enumeration positions
	// may differ.
	byID := make(map[string]string, len(flatStats))
	for _, st := range flatStats {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		byID[st.ID] = string(b)
	}
	for _, st := range splitStats {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if byID[st.ID] != string(b) {
			t.Fatalf("scenario %s: cached composed aggregate differs from flat original", st.ID)
		}
	}
}

// TestAdversarialSensingBounds pins the theory-side behavior under
// adversarial servers. Helpful-class scenarios — a cooperative member
// behind bounded corruption the sensing function can outwait — still
// succeed on every trial; scenarios beyond the sensing bound (a server
// that always suppresses progress, an obstinate server, an infeasible
// generated machine) are pinned failing.
func TestAdversarialSensingBounds(t *testing.T) {
	t.Parallel()

	sweepOne := func(t *testing.T, axes []Axis, seeds int) *Summary {
		t.Helper()
		m, err := NewMatrix(&Spec{Name: "pin", Axes: axes, Seeds: seeds, BaseSeed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, sum := collectStats(t, m, SweepConfig{Parallel: 2})
		if sum.Errors != 0 {
			t.Fatalf("pin sweep errored %d times", sum.Errors)
		}
		return sum
	}

	t.Run("helpful-within-bounds", func(t *testing.T) {
		t.Parallel()
		// Byzantine budget 4, misleading kicks in a quarter of the
		// rounds, dialect drifts — the universal user still converges,
		// because sensing only needs honest progress eventually.
		sum := sweepOne(t, []Axis{
			{Name: "goal", Values: []string{"printing", "transfer", "control"}},
			{Name: "class", Values: Ints(4)},
			{Name: "server", Values: []string{"0", "-1"}},
			{Name: "byzantine", Values: Ints(4)},
			{Name: "mislead", Values: Floats(0.25)},
			{Name: "drift", Values: Floats(0.25)},
			{Name: "rounds", Values: Ints(800)},
		}, 2)
		if sum.Successes != sum.Trials {
			t.Fatalf("helpful-class adversarial scenarios: %d/%d successes, want all",
				sum.Successes, sum.Trials)
		}
	})

	t.Run("mislead-one-starves", func(t *testing.T) {
		t.Parallel()
		// mislead=1 suppresses every action while claiming progress —
		// no goal with a world referee can be achieved.
		sum := sweepOne(t, []Axis{
			{Name: "goal", Values: []string{"printing", "transfer"}},
			{Name: "class", Values: Ints(4)},
			{Name: "server", Values: []string{"0"}},
			{Name: "mislead", Values: Floats(1)},
			{Name: "rounds", Values: Ints(400)},
		}, 2)
		if sum.Successes != 0 {
			t.Fatalf("mislead=1 scenarios succeeded %d times", sum.Successes)
		}
	})

	t.Run("obstinate-with-adversary", func(t *testing.T) {
		t.Parallel()
		sum := sweepOne(t, []Axis{
			{Name: "goal", Values: []string{"printing", "treasure"}},
			{Name: "class", Values: Ints(4)},
			{Name: "server", Values: []string{"obstinate"}},
			{Name: "byzantine", Values: Ints(4)},
			{Name: "mislead", Values: Floats(0.25)},
			{Name: "rounds", Values: Ints(400)},
		}, 2)
		if sum.Successes != 0 {
			t.Fatalf("obstinate scenarios succeeded %d times", sum.Successes)
		}
	})

	t.Run("infeasible-machine", func(t *testing.T) {
		t.Parallel()
		// Machine 0 of every space emits only symbol 0 — the target
		// output is unreachable, so the goal is never achieved no
		// matter the server.
		sum := sweepOne(t, []Axis{
			{Name: "goal", Values: []string{"fsm"}},
			{Name: "space", Values: []string{"2x2x2"}},
			{Name: "machine", Values: Ints(0)},
			{Name: "class", Values: Ints(4)},
			{Name: "server", Values: []string{"0", "-1"}},
			{Name: "drift", Values: Floats(0, 0.25)},
			{Name: "rounds", Values: Ints(400)},
		}, 2)
		if sum.Successes != 0 {
			t.Fatalf("infeasible fsm machine succeeded %d times", sum.Successes)
		}
	})
}
