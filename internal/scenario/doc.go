// Package scenario is the declarative scenario-space subsystem: it turns
// hand-coded experiment grids into data.
//
// A Spec names the axes of a scenario space — goal and world parameters,
// user strategy, the server transform stack (dialect class member, noise,
// delay, slowness, the unhelpful probe), horizons — and a Matrix expands
// their cross-product lazily: scenarios are decoded from an index on
// demand, never materialized as a slice, so billion-point spaces cost
// nothing to declare. Sample draws deterministic random subsets of huge
// spaces; every expanded Scenario carries a stable content-derived ID that
// does not depend on axis order or position in the enumeration.
//
// A Registry maps a scenario's axis values to concrete parties (the
// built-in registry covers the stock goals and server transforms), and
// Matrix.Sweep streams scenarios through the batch execution engine with
// online per-scenario aggregation — success rate, rounds-to-success
// distribution, message overhead — so sweeps never hold per-trial results.
// Sweep output is byte-identical at every parallelism level.
//
// # The trial-determinism contract
//
// Everything downstream of Sweep — sharding (Shard, MergeShards), result
// caching (Cache), and the coordinator/worker backend in
// repro/internal/dist — rests on one invariant: a scenario's trials depend
// only on the scenario's content and the sweep's effective parameters,
// never on where (or whether) the scenario appears in an enumeration,
// sample or shard. The default seed derivation is
//
//	system.DeriveSeed(baseSeed ^ scenario.Hash(), trial)
//
// where Hash is the content hash over sorted coordinates, so the same
// coordinates run the same trials everywhere. That is why a sharded,
// cached, sampled or distributed sweep can promise byte-identical reports
// against a fresh serial run.
//
// # Cache-key semantics
//
// A cache Key is (scenario ID, registry version, base seed, trials per
// scenario, window): the scenario's content plus everything else the
// aggregate depends on short of the execution itself. The registry
// version is the subtle member — builders are code, and the cache cannot
// observe whether re-registering a goal preserved the meaning of
// previously stored aggregates. Registry.SetVersion is therefore an
// explicit contract: an unversioned registry (the state after any
// Register call) bypasses the cache entirely, and a caller who declares a
// version owns bumping it whenever a builder's behavior changes. The
// stock Builtin registry is versioned; custom registries opt in.
//
// # Fingerprint canonicalization caveat
//
// Fingerprint — the digest that keys cross-run caches and refuses merges
// of shards from different sweeps — hashes the spec's axes in declaration
// order with their value lists in enumeration order, because that order
// fixes the index mapping shards are cut against. It is deliberately NOT
// invariant under axis reordering (scenario IDs are; fingerprints are
// not): two specs that denote the same point set with permuted axes
// enumerate it differently, so their shards must not merge. The flip side
// is that composed or generated specs must canonicalize axis and value
// order before fingerprinting, or identical spaces will miss each other's
// shards and cache restore keys.
package scenario
