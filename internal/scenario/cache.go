package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheVersion is bumped whenever the aggregate format or the execution
// semantics behind it change; entries carrying any other version are
// treated as misses and rewritten on the next execution.
const cacheVersion = 1

// Key identifies one scenario's aggregate in the result cache: everything
// the aggregate depends on besides the (deterministic) execution itself,
// including the version of the registry that bound the scenario to
// parties — two registries binding the same coordinates differently must
// not share entries. The scenario ID is content-derived, so a key is
// invariant under axis reordering, enumeration position, sampling and
// sharding — any sweep that visits the same coordinates under the same
// seed discipline and registry semantics reuses the same entry.
type Key struct {
	ScenarioID string
	Registry   string
	BaseSeed   uint64
	Seeds      int
	Window     int
}

// String renders the canonical key the entry is addressed and verified
// by.
func (k Key) String() string {
	return fmt.Sprintf("v%d|%d:%s|reg=%d:%s|base=%d|seeds=%d|window=%d",
		cacheVersion, len(k.ScenarioID), k.ScenarioID, len(k.Registry), k.Registry,
		k.BaseSeed, k.Seeds, k.Window)
}

// Cache is a content-addressed store of per-scenario sweep aggregates on
// the filesystem. Entries are addressed by a hash of their canonical Key
// and verified against the full key on read, so hash collisions,
// truncated or corrupted files, and version mismatches all degrade to
// cache misses — the sweep falls back to re-execution and overwrites the
// bad entry, never to wrong results. Writes are atomic (temp file +
// rename), so concurrent writers — parallel shards sharing one store, or
// CI runs racing on a restored cache — can interleave freely: sweeps are
// deterministic, every writer of a key writes identical bytes, and a
// reader sees either a complete entry or a miss.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path addresses an entry by content: FNV-1a of the canonical key,
// fanned out git-style into a two-hex-digit subdirectory.
func (c *Cache) path(k Key) string {
	name := fmt.Sprintf("%016x.json", fnv1a(offset64, k.String()))
	return filepath.Join(c.dir, name[:2], name[2:])
}

// cacheEntry is the on-disk envelope: the format version and full key
// travel with the aggregate so Get can verify them.
type cacheEntry struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Stats   *Stats `json:"stats"`
}

// Get returns the cached aggregate for k, or ok=false on any miss —
// absent, unreadable, corrupted or truncated entries, format-version
// mismatches, and key mismatches (a different key hashing to the same
// address) all report a miss rather than an error, because every miss
// has the same correct remedy: re-execute the scenario.
func (c *Cache) Get(k Key) (*Stats, bool) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		mCacheHeals.Inc()
		return nil, false
	}
	if e.Version != cacheVersion || e.Key != k.String() {
		mCacheHeals.Inc()
		return nil, false
	}
	if e.Stats == nil || e.Stats.ID != k.ScenarioID {
		mCacheHeals.Inc()
		return nil, false
	}
	return e.Stats, true
}

// Put stores an aggregate under k, atomically: the entry is written to a
// temp file in the destination directory and renamed into place, so no
// reader ever observes a partial entry no matter how many writers race.
func (c *Cache) Put(k Key, st *Stats) error {
	path := c.path(k)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Key: k.String(), Stats: st})
	if err != nil {
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("scenario: cache put: %w", err)
	}
	return nil
}

// Len walks the store and counts complete entries, for observability and
// tests; it does not verify them.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
