package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Axis is one named dimension of a scenario space. Values are canonical
// strings (see Ints and Floats for numeric axes); the value list order is
// the axis's enumeration order.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Spec declares a scenario space, in one of two shapes. A flat spec is
// the cross-product of its Axes; the first axis varies slowest in
// enumeration order, axis names must be unique and every axis needs at
// least one value. A composed spec instead declares Blocks — a union of
// per-family sub-matrices with independent (dependent-per-family) axis
// lists — and is canonicalized before enumeration and fingerprinting
// (see Canonical), so its identity is content-derived. Exactly one of
// Axes and Blocks must be set.
type Spec struct {
	// Name identifies the spec in reports and artifacts.
	Name string `json:"name"`

	// Axes are the dimensions of a flat spec, in enumeration order.
	Axes []Axis `json:"axes,omitempty"`

	// Blocks are the sub-matrices of a composed spec. The scenario space
	// is their union, enumerated block by block in canonical order.
	// Envelopes of composed sweeps carry this field, which readers from
	// before spec composition reject loudly (unknown JSON field) instead
	// of misreading.
	Blocks []Block `json:"blocks,omitempty"`

	// Seeds is the number of independent trials per scenario; 0 means 1.
	Seeds int `json:"seeds,omitempty"`

	// BaseSeed feeds per-trial seed derivation; 0 means 1.
	BaseSeed uint64 `json:"baseSeed,omitempty"`

	// Window is the convergence window compact-goal achievement is
	// judged on; 0 means 10.
	Window int `json:"window,omitempty"`
}

// Ints renders integer axis values in canonical form.
func Ints(vs ...int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// IntRange renders the integers lo..hi inclusive in canonical form — the
// idiom for machine-index axes that cover a whole generated goal family.
func IntRange(lo, hi int) []string {
	if hi < lo {
		return nil
	}
	out := make([]string, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, strconv.Itoa(v))
	}
	return out
}

// Floats renders float axis values in canonical (shortest round-trip)
// form.
func Floats(vs ...float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

// seeds returns the effective trial count per scenario.
func (s *Spec) seeds() int {
	if s.Seeds <= 0 {
		return 1
	}
	return s.Seeds
}

// baseSeed returns the effective seed-derivation root.
func (s *Spec) baseSeed() uint64 {
	if s.BaseSeed == 0 {
		return 1
	}
	return s.BaseSeed
}

// window returns the effective convergence window.
func (s *Spec) window() int {
	if s.Window <= 0 {
		return 10
	}
	return s.Window
}

// axis returns the named axis, or nil.
func (s *Spec) axis(name string) *Axis {
	for i := range s.Axes {
		if s.Axes[i].Name == name {
			return &s.Axes[i]
		}
	}
	return nil
}

// Validate checks structural well-formedness: a name, exactly one of
// axes and blocks, and within each axis list unique axis names and no
// empty value lists.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Axes) > 0 && len(s.Blocks) > 0 {
		return fmt.Errorf("scenario: spec %q has both axes and blocks; declare one shape", s.Name)
	}
	if len(s.Blocks) > 0 {
		for i, b := range s.Blocks {
			where := fmt.Sprintf("%s block %d", s.Name, i)
			if len(b.Axes) == 0 {
				return fmt.Errorf("scenario: spec %q block %d has no axes", s.Name, i)
			}
			if err := validateAxes(where, b.Axes); err != nil {
				return err
			}
		}
		return nil
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("scenario: spec %q has no axes", s.Name)
	}
	return validateAxes(s.Name, s.Axes)
}

// validateAxes checks one axis list: unique non-empty names, non-empty
// value lists, non-empty values.
func validateAxes(where string, axes []Axis) error {
	seen := make(map[string]bool, len(axes))
	for _, ax := range axes {
		if ax.Name == "" {
			return fmt.Errorf("scenario: spec %q has an unnamed axis", where)
		}
		if seen[ax.Name] {
			return fmt.Errorf("scenario: spec %q repeats axis %q", where, ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("scenario: spec %q axis %q has no values", where, ax.Name)
		}
		for _, v := range ax.Values {
			if v == "" {
				return fmt.Errorf("scenario: spec %q axis %q has an empty value", where, ax.Name)
			}
		}
	}
	return nil
}

// Restrict narrows the named axis to the given values, preserving the
// spec's value order. It errors if the axis does not exist, a value is not
// on the axis, or the restriction would empty it. On a composed spec the
// restriction applies per block: blocks lacking the axis are dropped
// (their scenarios hold the axis at its default, which the restriction
// excludes), blocks whose intersection is empty are dropped, a value
// found on no block's axis is an error, and emptying the whole spec is
// an error.
func (s *Spec) Restrict(name string, values ...string) error {
	want := make(map[string]bool, len(values))
	for _, v := range values {
		want[v] = true
	}
	if len(s.Blocks) > 0 {
		return s.restrictBlocks(name, values, want)
	}
	ax := s.axis(name)
	if ax == nil {
		return fmt.Errorf("scenario: spec %q has no axis %q", s.Name, name)
	}
	kept := make([]string, 0, len(values))
	for _, v := range ax.Values {
		if want[v] {
			kept = append(kept, v)
			delete(want, v)
		}
	}
	for v := range want {
		return fmt.Errorf("scenario: axis %q has no value %q", name, v)
	}
	if len(kept) == 0 {
		return fmt.Errorf("scenario: restriction empties axis %q", name)
	}
	ax.Values = kept
	return nil
}

// restrictBlocks applies Restrict's per-block semantics. unmatched
// tracks requested values found on no block, which is an error just as a
// missing value is on a flat axis.
func (s *Spec) restrictBlocks(name string, values []string, unmatched map[string]bool) error {
	found := false
	kept := make([]Block, 0, len(s.Blocks))
	for _, b := range s.Blocks {
		var ax *Axis
		for i := range b.Axes {
			if b.Axes[i].Name == name {
				ax = &b.Axes[i]
				break
			}
		}
		if ax == nil {
			continue
		}
		found = true
		want := make(map[string]bool, len(values))
		for _, v := range values {
			want[v] = true
		}
		narrowed := make([]string, 0, len(values))
		for _, v := range ax.Values {
			if want[v] {
				narrowed = append(narrowed, v)
				delete(unmatched, v)
			}
		}
		if len(narrowed) == 0 {
			continue
		}
		// Rebuild the block so sibling specs sharing the backing arrays
		// (builtin specs are constructed fresh, but callers may copy)
		// never see the mutation.
		nb := Block{Axes: make([]Axis, len(b.Axes))}
		copy(nb.Axes, b.Axes)
		for i := range nb.Axes {
			if nb.Axes[i].Name == name {
				nb.Axes[i] = Axis{Name: name, Values: narrowed}
			}
		}
		kept = append(kept, nb)
	}
	if !found {
		return fmt.Errorf("scenario: spec %q has no axis %q", s.Name, name)
	}
	for v := range unmatched {
		return fmt.Errorf("scenario: axis %q has no value %q", name, v)
	}
	if len(kept) == 0 {
		return fmt.Errorf("scenario: restriction empties axis %q", name)
	}
	s.Blocks = kept
	return nil
}

// ReadSpec decodes a JSON spec and validates it. Unknown fields are
// rejected so typos in hand-written specs fail loudly.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
