package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Axis is one named dimension of a scenario space. Values are canonical
// strings (see Ints and Floats for numeric axes); the value list order is
// the axis's enumeration order.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Spec declares a scenario space as the cross-product of its axes. The
// first axis varies slowest in enumeration order. Axis names must be
// unique and every axis needs at least one value.
type Spec struct {
	// Name identifies the spec in reports and artifacts.
	Name string `json:"name"`

	// Axes are the dimensions of the space, in enumeration order.
	Axes []Axis `json:"axes"`

	// Seeds is the number of independent trials per scenario; 0 means 1.
	Seeds int `json:"seeds,omitempty"`

	// BaseSeed feeds per-trial seed derivation; 0 means 1.
	BaseSeed uint64 `json:"baseSeed,omitempty"`

	// Window is the convergence window compact-goal achievement is
	// judged on; 0 means 10.
	Window int `json:"window,omitempty"`
}

// Ints renders integer axis values in canonical form.
func Ints(vs ...int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// Floats renders float axis values in canonical (shortest round-trip)
// form.
func Floats(vs ...float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

// seeds returns the effective trial count per scenario.
func (s *Spec) seeds() int {
	if s.Seeds <= 0 {
		return 1
	}
	return s.Seeds
}

// baseSeed returns the effective seed-derivation root.
func (s *Spec) baseSeed() uint64 {
	if s.BaseSeed == 0 {
		return 1
	}
	return s.BaseSeed
}

// window returns the effective convergence window.
func (s *Spec) window() int {
	if s.Window <= 0 {
		return 10
	}
	return s.Window
}

// axis returns the named axis, or nil.
func (s *Spec) axis(name string) *Axis {
	for i := range s.Axes {
		if s.Axes[i].Name == name {
			return &s.Axes[i]
		}
	}
	return nil
}

// Validate checks structural well-formedness: a name, at least one axis,
// unique axis names, and no empty value lists.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("scenario: spec %q has no axes", s.Name)
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return fmt.Errorf("scenario: spec %q has an unnamed axis", s.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("scenario: spec %q repeats axis %q", s.Name, ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("scenario: spec %q axis %q has no values", s.Name, ax.Name)
		}
		for _, v := range ax.Values {
			if v == "" {
				return fmt.Errorf("scenario: spec %q axis %q has an empty value", s.Name, ax.Name)
			}
		}
	}
	return nil
}

// Restrict narrows the named axis to the given values, preserving the
// spec's value order. It errors if the axis does not exist, a value is not
// on the axis, or the restriction would empty it.
func (s *Spec) Restrict(name string, values ...string) error {
	ax := s.axis(name)
	if ax == nil {
		return fmt.Errorf("scenario: spec %q has no axis %q", s.Name, name)
	}
	want := make(map[string]bool, len(values))
	for _, v := range values {
		want[v] = true
	}
	kept := make([]string, 0, len(values))
	for _, v := range ax.Values {
		if want[v] {
			kept = append(kept, v)
			delete(want, v)
		}
	}
	for v := range want {
		return fmt.Errorf("scenario: axis %q has no value %q", name, v)
	}
	if len(kept) == 0 {
		return fmt.Errorf("scenario: restriction empties axis %q", name)
	}
	ax.Values = kept
	return nil
}

// ReadSpec decodes a JSON spec and validates it. Unknown fields are
// rejected so typos in hand-written specs fail loudly.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
