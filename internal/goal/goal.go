// Package goal defines goals of communication, the central object of the
// theory.
//
// A goal is introduced by fixing the strategy of a third party — the world,
// capturing "the rest of the system" or "the environment" — and a set of
// acceptable sequences of world states (equivalently, a referee predicate on
// histories of world states). The goal is achieved if the system produces an
// acceptable sequence of world states.
//
// Following the paper, the world makes a single non-deterministic choice of
// a standard probabilistic strategy; here that choice is reified as an Env
// value so experiments can sweep it explicitly.
//
// Two families of goals are distinguished by how the referee decides:
//
//   - Finite goals: the user must halt, and the referee is defined on the
//     finite history at the halting point (FiniteGoal).
//   - Compact goals: the system runs forever, and the referee accepts iff
//     only finitely many prefixes of the history are unacceptable
//     (CompactGoal, evaluated on bounded horizons by CompactAchieved).
package goal

import (
	"fmt"

	"repro/internal/comm"
)

// Kind distinguishes the two families of goals treated by the theory.
type Kind int

// Goal kinds.
const (
	KindFinite Kind = iota + 1
	KindCompact
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindFinite:
		return "finite"
	case KindCompact:
		return "compact"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Env is the world's single non-deterministic choice: which probabilistic
// strategy (environment instance) the world runs. Choice selects among a
// goal's countable set of environments; Seed drives the chosen strategy's
// internal randomness.
type Env struct {
	Choice int
	Seed   uint64
}

// World is the third party's strategy. Beyond exchanging messages it exposes
// a Snapshot of its instantaneous state; the execution engine records one
// snapshot per round, and referees judge the resulting history.
type World interface {
	comm.Strategy

	// Snapshot serializes the world's current state. It is called once
	// per round, after the world's Step.
	Snapshot() comm.WorldState
}

// StateAppender is an optional World refinement for the engine's hot
// path: a world that can serialize its snapshot into a caller-provided
// buffer instead of allocating a fresh string per round.
//
// Contract: AppendSnapshot(dst) appends exactly the bytes of Snapshot()
// to dst and returns the extended slice — the two encodings must never
// diverge, because referees judge whichever one the execution engine
// materialized. The engine interns the appended bytes into shared
// WorldState strings; interning cannot change observable output, since
// equal states intern to strings with equal bytes.
type StateAppender interface {
	// AppendSnapshot appends the world's current snapshot to dst.
	AppendSnapshot(dst []byte) []byte
}

// StateVersioned is an optional World refinement for the engine's hot
// path: a world that exposes a generation counter advancing exactly when
// its snapshot changes, so the engine detects "state unchanged since last
// round" with one integer compare instead of re-serializing and interning
// identical bytes.
//
// Contract: between two calls with no intervening change to the bytes
// Snapshot() would produce, StateGen returns the same value; whenever
// those bytes would differ, the value differs from the previous one.
// Monotonicity is not required, only inequality across changes within a
// single execution (Reset may reuse values — the engine never compares
// generations across runs).
type StateVersioned interface {
	// StateGen returns the current snapshot generation.
	StateGen() uint64
}

// WorldJudge is an optional CompactGoal refinement for the engine's hot
// path: a referee that can judge the live world directly, so per-round
// trackers never round-trip through a formatted snapshot string.
//
// Contract: AcceptableWorld(w) must equal Acceptable(h) for any history
// h whose last state is w's current Snapshot() — it is the same
// predicate, evaluated before serialization. Implementations that
// receive a world type they do not recognize must fall back to judging
// the snapshot.
type WorldJudge interface {
	// AcceptableWorld reports whether a history ending in w's current
	// state is acceptable.
	AcceptableWorld(w World) bool
}

// Goal fixes a world strategy (up to its non-deterministic choice) and gives
// the referee access via the FiniteGoal or CompactGoal refinement.
type Goal interface {
	// Name identifies the goal in tables and logs.
	Name() string

	// Kind reports whether the goal is finite or compact.
	Kind() Kind

	// NewWorld instantiates a fresh world for the given environment
	// choice. Each execution gets its own world instance.
	NewWorld(env Env) World

	// EnvChoices returns the number of distinct non-deterministic
	// choices the world can make (at least 1). Experiments sweep
	// Env.Choice over [0, EnvChoices).
	EnvChoices() int
}

// FiniteGoal is a goal whose referee decides on the finite history present
// when the user halts.
type FiniteGoal interface {
	Goal

	// Achieved reports whether the finite history is acceptable.
	Achieved(h comm.History) bool
}

// CompactGoal is a goal whose referee marks each prefix of the infinite
// history acceptable or unacceptable; the goal is achieved iff only finitely
// many prefixes are unacceptable.
type CompactGoal interface {
	Goal

	// Acceptable reports whether the given prefix is acceptable.
	Acceptable(prefix comm.History) bool
}

// Forgiving marks goals in which every finite partial history can be
// extended to a successful one — the class the paper focuses on, because it
// lets a universal user recover from arbitrary early missteps.
type Forgiving interface {
	// ForgivingGoal is a marker; implementations simply return true.
	ForgivingGoal() bool
}

// CompactAchieved evaluates a compact goal on a bounded horizon: the goal
// counts as achieved if every prefix in the final window rounds is
// acceptable, i.e. unacceptable prefixes stopped occurring at least window
// rounds before the end. This is the executable stand-in for "finitely many
// unacceptable prefixes" (see DESIGN.md §4); window must be positive and at
// most h.Len(). A windowed history (h.Dropped > 0) must retain at least
// window states, or Prefix panics.
func CompactAchieved(g CompactGoal, h comm.History, window int) bool {
	if window <= 0 || window > h.Len() {
		return false
	}
	for n := h.Len() - window + 1; n <= h.Len(); n++ {
		if !g.Acceptable(h.Prefix(n)) {
			return false
		}
	}
	return true
}

// UnacceptableCount returns the number of unacceptable prefixes of h under
// the compact goal's referee — the quantity whose finiteness defines
// achievement, and a natural progress metric for experiments. It examines
// every prefix, so h must be fully recorded (h.Dropped == 0).
func UnacceptableCount(g CompactGoal, h comm.History) int {
	count := 0
	for n := 1; n <= h.Len(); n++ {
		if !g.Acceptable(h.Prefix(n)) {
			count++
		}
	}
	return count
}

// LastUnacceptable returns the largest prefix length at which the referee
// rejected, or 0 if every prefix of h is acceptable. For an achieved compact
// goal this is the convergence point. It may examine every prefix, so h
// must be fully recorded (h.Dropped == 0).
func LastUnacceptable(g CompactGoal, h comm.History) int {
	for n := h.Len(); n >= 1; n-- {
		if !g.Acceptable(h.Prefix(n)) {
			return n
		}
	}
	return 0
}
