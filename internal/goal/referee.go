package goal

import "repro/internal/comm"

// RefereeFunc is a standalone compact-referee predicate over history
// prefixes. Combinators below compose predicates so richer goals can be
// assembled from simpler ones over the same world.
type RefereeFunc func(prefix comm.History) bool

// AndReferees accepts a prefix iff every component accepts it — e.g.
// "document printed AND paper budget respected".
func AndReferees(refs ...RefereeFunc) RefereeFunc {
	copied := make([]RefereeFunc, len(refs))
	copy(copied, refs)
	return func(prefix comm.History) bool {
		for _, r := range copied {
			if !r(prefix) {
				return false
			}
		}
		return true
	}
}

// OrReferees accepts a prefix iff some component accepts it.
func OrReferees(refs ...RefereeFunc) RefereeFunc {
	copied := make([]RefereeFunc, len(refs))
	copy(copied, refs)
	return func(prefix comm.History) bool {
		for _, r := range copied {
			if r(prefix) {
				return true
			}
		}
		return false
	}
}

// NotReferee inverts a predicate. Note that negating a monotone referee
// usually produces a non-forgiving goal; use with care.
func NotReferee(ref RefereeFunc) RefereeFunc {
	return func(prefix comm.History) bool { return !ref(prefix) }
}

// Since accepts prefixes only from round n onward (1-based); earlier
// prefixes are unacceptable. Useful to encode deadlines inverted:
// "acceptable only after warm-up".
func Since(n int, ref RefereeFunc) RefereeFunc {
	return func(prefix comm.History) bool {
		return prefix.Len() >= n && ref(prefix)
	}
}

// derivedGoal swaps a compact goal's referee while keeping its worlds.
type derivedGoal struct {
	base CompactGoal
	name string
	ref  RefereeFunc
}

var _ CompactGoal = (*derivedGoal)(nil)

// WithReferee returns a compact goal with the same name-space of worlds as
// base but judged by the given referee. This is how composed predicates
// become goals: the world dynamics are reused, only the notion of success
// changes.
func WithReferee(base CompactGoal, name string, ref RefereeFunc) CompactGoal {
	return &derivedGoal{base: base, name: name, ref: ref}
}

// Name implements Goal.
func (d *derivedGoal) Name() string { return d.name }

// Kind implements Goal.
func (d *derivedGoal) Kind() Kind { return KindCompact }

// NewWorld implements Goal.
func (d *derivedGoal) NewWorld(env Env) World { return d.base.NewWorld(env) }

// EnvChoices implements Goal.
func (d *derivedGoal) EnvChoices() int { return d.base.EnvChoices() }

// Acceptable implements CompactGoal.
func (d *derivedGoal) Acceptable(prefix comm.History) bool { return d.ref(prefix) }
