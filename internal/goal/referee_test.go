package goal_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
)

func hist(states ...string) comm.History {
	ws := make([]comm.WorldState, len(states))
	for i, s := range states {
		ws[i] = comm.WorldState(s)
	}
	return comm.History{States: ws}
}

func lastIs(want string) goal.RefereeFunc {
	return func(p comm.History) bool { return string(p.Last()) == want }
}

func TestAndReferees(t *testing.T) {
	t.Parallel()

	both := goal.AndReferees(lastIs("x"), func(p comm.History) bool { return p.Len() >= 2 })
	if both(hist("x")) {
		t.Fatal("short prefix accepted")
	}
	if !both(hist("y", "x")) {
		t.Fatal("satisfying prefix rejected")
	}
	if both(hist("x", "y")) {
		t.Fatal("wrong last state accepted")
	}
	// Empty conjunction is vacuously true.
	if !goal.AndReferees()(hist("x")) {
		t.Fatal("empty AndReferees not vacuous")
	}
}

func TestOrReferees(t *testing.T) {
	t.Parallel()

	either := goal.OrReferees(lastIs("a"), lastIs("b"))
	if !either(hist("a")) || !either(hist("b")) {
		t.Fatal("accepting branch rejected")
	}
	if either(hist("c")) {
		t.Fatal("no-branch prefix accepted")
	}
	if goal.OrReferees()(hist("a")) {
		t.Fatal("empty OrReferees not vacuously false")
	}
}

func TestNotAndSince(t *testing.T) {
	t.Parallel()

	notA := goal.NotReferee(lastIs("a"))
	if notA(hist("a")) || !notA(hist("b")) {
		t.Fatal("NotReferee wrong")
	}
	late := goal.Since(3, lastIs("a"))
	if late(hist("a")) {
		t.Fatal("Since accepted before round 3")
	}
	if !late(hist("x", "y", "a")) {
		t.Fatal("Since rejected after round 3")
	}
}

// thriftyPrinting derives "print the target AND never exceed a sheet
// budget" from snapshots of the printing world's form
// "target=T;printed=N;done=D".
func printedCount(p comm.History) int {
	for _, part := range strings.Split(string(p.Last()), ";") {
		if rest, ok := strings.CutPrefix(part, "printed="); ok {
			n, err := strconv.Atoi(rest)
			if err == nil {
				return n
			}
		}
	}
	return 0
}

func TestWithRefereeDerivedGoal(t *testing.T) {
	t.Parallel()

	base := &stubCompactGoal{}
	thrifty := goal.WithReferee(base, "printing-thrifty", goal.AndReferees(
		func(p comm.History) bool { return strings.HasSuffix(string(p.Last()), "done=1") },
		func(p comm.History) bool { return printedCount(p) <= 3 },
	))
	if thrifty.Name() != "printing-thrifty" || thrifty.Kind() != goal.KindCompact {
		t.Fatal("derived goal metadata wrong")
	}
	if thrifty.EnvChoices() != base.EnvChoices() {
		t.Fatal("derived goal env choices wrong")
	}

	frugal := hist("target=t;printed=2;done=1")
	waste := hist("target=t;printed=9;done=1")
	undone := hist("target=t;printed=1;done=0")
	if !thrifty.Acceptable(frugal) {
		t.Fatal("frugal success rejected")
	}
	if thrifty.Acceptable(waste) {
		t.Fatal("wasteful success accepted")
	}
	if thrifty.Acceptable(undone) {
		t.Fatal("unfinished prefix accepted")
	}
	// The base referee is unchanged.
	if !base.Acceptable(waste) {
		t.Fatal("base goal corrupted by derivation")
	}
}

type stubCompactGoal struct{}

func (*stubCompactGoal) Name() string                 { return "stub" }
func (*stubCompactGoal) Kind() goal.Kind              { return goal.KindCompact }
func (*stubCompactGoal) NewWorld(goal.Env) goal.World { return nil }
func (*stubCompactGoal) EnvChoices() int              { return 2 }
func (*stubCompactGoal) Acceptable(p comm.History) bool {
	return strings.HasSuffix(string(p.Last()), "done=1")
}
