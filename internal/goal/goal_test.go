package goal_test

import (
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/goal"
)

// thresholdGoal is a compact goal over arbitrary histories: a prefix is
// acceptable iff its length is at least K (i.e. the goal "converges" at K).
type thresholdGoal struct{ K int }

func (g *thresholdGoal) Name() string                   { return "threshold" }
func (g *thresholdGoal) Kind() goal.Kind                { return goal.KindCompact }
func (g *thresholdGoal) NewWorld(goal.Env) goal.World   { return &commtest.CountingWorld{} }
func (g *thresholdGoal) EnvChoices() int                { return 1 }
func (g *thresholdGoal) Acceptable(p comm.History) bool { return p.Len() >= g.K }

func mkHistory(n int) comm.History {
	states := make([]comm.WorldState, n)
	for i := range states {
		states[i] = comm.WorldState("s")
	}
	return comm.History{States: states}
}

func TestKindString(t *testing.T) {
	t.Parallel()

	if goal.KindFinite.String() != "finite" || goal.KindCompact.String() != "compact" {
		t.Fatal("kind names wrong")
	}
	if goal.Kind(0).String() != "kind(0)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestCompactAchieved(t *testing.T) {
	t.Parallel()

	g := &thresholdGoal{K: 5}
	h := mkHistory(20)

	tests := []struct {
		name   string
		window int
		want   bool
	}{
		{"window inside converged region", 10, true},
		{"window covering divergent prefixes", 17, false},
		{"zero window", 0, false},
		{"oversized window", 21, false},
		{"full history minus divergence", 16, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := goal.CompactAchieved(g, h, tt.window); got != tt.want {
				t.Fatalf("CompactAchieved(window=%d) = %v, want %v", tt.window, got, tt.want)
			}
		})
	}
}

func TestCompactAchievedNeverConverges(t *testing.T) {
	t.Parallel()

	g := &thresholdGoal{K: 1000}
	h := mkHistory(50)
	if goal.CompactAchieved(g, h, 10) {
		t.Fatal("achieved despite no acceptable prefix")
	}
}

func TestUnacceptableCount(t *testing.T) {
	t.Parallel()

	g := &thresholdGoal{K: 5}
	h := mkHistory(20)
	// Prefixes of lengths 1..4 are unacceptable.
	if got := goal.UnacceptableCount(g, h); got != 4 {
		t.Fatalf("UnacceptableCount = %d, want 4", got)
	}
}

func TestLastUnacceptable(t *testing.T) {
	t.Parallel()

	g := &thresholdGoal{K: 5}
	if got := goal.LastUnacceptable(g, mkHistory(20)); got != 4 {
		t.Fatalf("LastUnacceptable = %d, want 4", got)
	}
	if got := goal.LastUnacceptable(&thresholdGoal{K: 0}, mkHistory(20)); got != 0 {
		t.Fatalf("LastUnacceptable on always-acceptable goal = %d, want 0", got)
	}
}

func TestCompactAchievedConsistentWithCounts(t *testing.T) {
	t.Parallel()

	// Property: for a monotone referee, CompactAchieved with window w
	// holds iff LastUnacceptable <= len - w.
	f := func(k, n uint8, w uint8) bool {
		g := &thresholdGoal{K: int(k % 40)}
		h := mkHistory(int(n%40) + 1)
		window := int(w%40) + 1
		if window > h.Len() {
			window = h.Len()
		}
		got := goal.CompactAchieved(g, h, window)
		want := goal.LastUnacceptable(g, h) <= h.Len()-window
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlagGoalReferee(t *testing.T) {
	t.Parallel()

	g := &commtest.FlagGoal{Want: "done"}
	h := comm.History{States: []comm.WorldState{
		"r=1;u=;s=", "r=2;u=done;s=", "r=3;u=other;s=",
	}}
	if g.Acceptable(h.Prefix(1)) {
		t.Fatal("prefix 1 should be unacceptable")
	}
	if !g.Acceptable(h.Prefix(2)) {
		t.Fatal("prefix 2 should be acceptable")
	}
	// Flag persists even though later snapshots changed.
	if !g.Acceptable(h) {
		t.Fatal("full history should be acceptable")
	}
}
